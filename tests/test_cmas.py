"""Tests for CMAS extraction and the cache-access profiler."""

import pytest

from repro.config import MachineConfig
from repro.errors import SlicingError
from repro.sim import generate_trace, profile_cache
from repro.slicer import compile_hidisc, extract_cmas, separate

from .conftest import build_load_compute_store
from repro.asm.builder import ProgramBuilder


def build_chase(n=512, hops=64):
    """A pointer chase over a permutation (misses a small cache model)."""
    import numpy as np

    rng = np.random.default_rng(7)
    order = rng.permutation(n)
    field = np.empty(n, dtype=np.int64)
    field[order] = np.roll(order, -1)
    b = ProgramBuilder("chase")
    b.data_i64("field", field)
    b.data_i64("out", [0])
    b.la("s0", "field")
    b.li("s1", hops)
    b.li("s2", 0)
    b.li("t0", 0)
    b.label("loop")
    b.slli("t1", "t0", 3)
    b.add("t1", "t1", "s0")
    b.ld("t0", 0, "t1")
    b.addi("s2", "s2", 1)
    b.blt("s2", "s1", "loop")
    b.la("a0", "out")
    b.sd("t0", 0, "a0")
    b.halt()
    return b.build()


class TestProfiler:
    def test_counts_accesses_per_pc(self, config):
        program = build_load_compute_store(8)
        trace, _ = generate_trace(program)
        profile = profile_cache(program, trace, config)
        load_pc = next(pc for pc, i in enumerate(program.text) if i.is_load)
        assert profile.per_pc[load_pc].accesses == 8
        assert profile.total_accesses == 16  # 8 loads + 8 stores

    def test_miss_rates_bounded(self, config):
        program = build_chase()
        trace, _ = generate_trace(program)
        profile = profile_cache(program, trace, config)
        for pc_profile in profile.per_pc.values():
            assert 0.0 <= pc_profile.miss_rate <= 1.0
        assert 0.0 <= profile.miss_rate <= 1.0

    def test_chase_load_is_probable_miss(self, config):
        program = build_chase()
        trace, _ = generate_trace(program)
        profile = profile_cache(program, trace, config)
        miss_pcs = profile.probable_miss_pcs(0.05)
        chase_pc = next(
            pc for pc, i in enumerate(program.text)
            if i.is_load and i.rd == 8  # ld t0, 0(t1)
        )
        assert chase_pc in miss_pcs

    def test_min_accesses_filter(self, config):
        program = build_load_compute_store(2)
        trace, _ = generate_trace(program)
        profile = profile_cache(program, trace, config)
        assert profile.probable_miss_pcs(0.0, min_accesses=100) == set()


class TestExtraction:
    def test_slice_contains_address_chain(self):
        program = build_chase()
        sep = separate(program)
        chase_pc = next(pc for pc, i in enumerate(program.text)
                        if i.is_load and i.rd == 8)
        selection = extract_cmas(sep, {chase_pc})
        assert chase_pc in selection.cmas_pcs
        # slli and add feeding the address must be in the slice.
        mnemonics = {program.text[pc].op.mnemonic for pc in selection.cmas_pcs}
        assert {"slli", "add", "ld"} <= mnemonics

    def test_slice_excludes_stores_and_control(self):
        program = build_chase()
        sep = separate(program)
        chase_pc = next(pc for pc, i in enumerate(program.text)
                        if i.is_load and i.rd == 8)
        selection = extract_cmas(sep, {chase_pc})
        for pc in selection.cmas_pcs:
            assert not program.text[pc].is_store
            assert not program.text[pc].is_control

    def test_rejects_non_load_seed(self):
        program = build_chase()
        sep = separate(program)
        store_pc = next(pc for pc, i in enumerate(program.text) if i.is_store)
        with pytest.raises(SlicingError):
            extract_cmas(sep, {store_pc})

    def test_apply_marks(self):
        program = build_chase()
        sep = separate(program)
        chase_pc = next(pc for pc, i in enumerate(program.text)
                        if i.is_load and i.rd == 8)
        selection = extract_cmas(sep, {chase_pc})
        annotated = sep.annotate()
        selection.apply(annotated)
        assert annotated.text[chase_pc].ann.probable_miss
        assert annotated.text[chase_pc].ann.cmas


class TestPipeline:
    def test_compile_hidisc_end_to_end(self, config):
        comp = compile_hidisc(build_chase(), config)
        report = comp.report()
        assert report["probable_miss_loads"] >= 1
        assert report["cmas_instructions"] >= 3
        assert report["access_stream"] + report["computation_stream"] \
            == report["static_instructions"]

    def test_compile_with_explicit_seeds(self, config):
        program = build_chase()
        chase_pc = next(pc for pc, i in enumerate(program.text)
                        if i.is_load and i.rd == 8)
        comp = compile_hidisc(program, config, probable_miss_pcs={chase_pc})
        assert comp.selection.probable_miss_pcs == {chase_pc}
        # marks transferred to the decoupled program
        mapped = comp.communication.instr_map[chase_pc]
        assert comp.decoupled.text[mapped].ann.probable_miss
