"""Tests for the architectural FIFO queues."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueueProtocolError
from repro.sim.queues import ArchQueue, QueueSet


class TestFifo:
    def test_order_preserved(self):
        q = ArchQueue("q", 8)
        for v in (1, 2, 3):
            q.push(v)
        assert [q.pop() for _ in range(3)] == [1, 2, 3]

    def test_pop_empty_raises(self):
        q = ArchQueue("q", 4)
        with pytest.raises(QueueProtocolError):
            q.pop()

    def test_peek(self):
        q = ArchQueue("q", 4)
        q.push(9)
        assert q.peek() == 9
        assert len(q) == 1
        q.pop()
        with pytest.raises(QueueProtocolError):
            q.peek()

    def test_capacity_enforced_optionally(self):
        q = ArchQueue("q", 2)
        q.push(1)
        q.push(2)
        assert q.full and not q.can_push()
        q.push(3)  # functional mode: allowed
        with pytest.raises(QueueProtocolError):
            q.push(4, enforce_capacity=True)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ArchQueue("q", 0)


class TestStats:
    def test_counters(self):
        q = ArchQueue("q", 4)
        q.push(1)
        q.push(2)
        q.pop()
        q.note_full_stall(3)
        q.note_empty_stall()
        s = q.stats
        assert s.pushes == 2 and s.pops == 1
        assert s.max_occupancy == 2
        assert s.full_stall_cycles == 3 and s.empty_stall_cycles == 1

    def test_clear_keeps_stats(self):
        q = ArchQueue("q", 4)
        q.push(1)
        q.clear()
        assert q.empty
        assert q.stats.pushes == 1


class TestQueueSet:
    def test_construction(self):
        qs = QueueSet(32, 16, 8)
        assert qs.ldq.capacity == 32
        assert qs.sdq.capacity == 16
        assert qs.saq.capacity == 8

    def test_all_empty(self):
        qs = QueueSet(4, 4, 4)
        assert qs.all_empty()
        qs.sdq.push(1)
        assert not qs.all_empty()
        qs.clear()
        assert qs.all_empty()


@given(st.lists(st.one_of(st.integers(), st.none()), max_size=60))
def test_queue_matches_list_model(ops):
    """Property: push/pop sequence behaves exactly like a Python list.

    Integers push the value; None pops (skipped when the model is empty).
    """
    q = ArchQueue("model", 1 << 30)
    model: list[int] = []
    for op in ops:
        if op is None:
            if model:
                assert q.pop() == model.pop(0)
            else:
                with pytest.raises(QueueProtocolError):
                    q.pop()
        else:
            q.push(op)
            model.append(op)
        assert len(q) == len(model)
        assert q.empty == (not model)
