"""Functional simulator semantics, opcode group by opcode group."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm.builder import ProgramBuilder
from repro.asm.program import STACK_TOP
from repro.errors import SimulationError
from repro.isa import FP_BASE, Op
from repro.sim.functional import FunctionalSimulator, load_program
from repro.utils import to_signed64, to_unsigned64

from .conftest import build_counting_loop


def run_and_state(builder: ProgramBuilder):
    program = builder.build()
    sim = FunctionalSimulator(program)
    return sim.run(), program, sim


def eval_int_op(emit, a, b):
    """Run one 3-register integer op on (a, b); return the result."""
    builder = ProgramBuilder()
    builder.data_i64("out", [0])
    builder.li64("t0", a)
    builder.li64("t1", b)
    emit(builder)
    builder.la("a0", "out")
    builder.sd("t2", 0, "a0")
    builder.halt()
    state, program, _ = run_and_state(builder)
    return state.memory.load(program.data_symbols["out"], 8)


class TestIntegerAlu:
    def test_add_wraps(self):
        result = eval_int_op(lambda b: b.add("t2", "t0", "t1"),
                             2**63 - 1, 1)
        assert result == -(2**63)

    def test_sub(self):
        assert eval_int_op(lambda b: b.sub("t2", "t0", "t1"), 5, 9) == -4

    def test_mul_wraps(self):
        assert eval_int_op(lambda b: b.mul("t2", "t0", "t1"),
                           2**62, 4) == 0

    def test_div_truncates_toward_zero(self):
        assert eval_int_op(lambda b: b.div("t2", "t0", "t1"), -7, 2) == -3
        assert eval_int_op(lambda b: b.div("t2", "t0", "t1"), 7, -2) == -3

    def test_rem_sign_follows_dividend(self):
        assert eval_int_op(lambda b: b.rem("t2", "t0", "t1"), -7, 2) == -1
        assert eval_int_op(lambda b: b.rem("t2", "t0", "t1"), 7, -2) == 1

    def test_div_by_zero_defined(self):
        # RISC-V semantics: quotient all-ones, remainder the dividend.
        assert eval_int_op(lambda b: b.div("t2", "t0", "t1"), 1, 0) == -1
        assert eval_int_op(lambda b: b.div("t2", "t0", "t1"), -7, 0) == -1
        assert eval_int_op(lambda b: b.rem("t2", "t0", "t1"), 7, 0) == 7
        assert eval_int_op(lambda b: b.rem("t2", "t0", "t1"), -7, 0) == -7

    def test_div_overflow_wraps(self):
        # I64_MIN / -1 overflows; RISC-V defines q = I64_MIN, r = 0.
        assert eval_int_op(lambda b: b.div("t2", "t0", "t1"),
                           -(2 ** 63), -1) == -(2 ** 63)
        assert eval_int_op(lambda b: b.rem("t2", "t0", "t1"),
                           -(2 ** 63), -1) == 0

    def test_logicals(self):
        assert eval_int_op(lambda b: b.and_("t2", "t0", "t1"), 0b1100, 0b1010) == 0b1000
        assert eval_int_op(lambda b: b.or_("t2", "t0", "t1"), 0b1100, 0b1010) == 0b1110
        assert eval_int_op(lambda b: b.xor("t2", "t0", "t1"), 0b1100, 0b1010) == 0b0110
        assert eval_int_op(lambda b: b.nor("t2", "t0", "t1"), 0, 0) == -1

    def test_shifts(self):
        assert eval_int_op(lambda b: b.sll("t2", "t0", "t1"), 1, 40) == 1 << 40
        assert eval_int_op(lambda b: b.srl("t2", "t0", "t1"), -1, 60) == 15
        assert eval_int_op(lambda b: b.sra("t2", "t0", "t1"), -16, 2) == -4

    def test_shift_amount_masked_to_6_bits(self):
        assert eval_int_op(lambda b: b.sll("t2", "t0", "t1"), 1, 64) == 1

    def test_slt_signed_vs_unsigned(self):
        assert eval_int_op(lambda b: b.slt("t2", "t0", "t1"), -1, 0) == 1
        assert eval_int_op(lambda b: b.sltu("t2", "t0", "t1"), -1, 0) == 0

    @given(a=st.integers(-(2**63), 2**63 - 1), b=st.integers(-(2**63), 2**63 - 1))
    def test_add_matches_python(self, a, b):
        assert eval_int_op(lambda bd: bd.add("t2", "t0", "t1"), a, b) \
            == to_signed64(a + b)

    @given(a=st.integers(-(2**63), 2**63 - 1), s=st.integers(0, 63))
    def test_srl_matches_python(self, a, s):
        assert eval_int_op(lambda bd: bd.srl("t2", "t0", "t1"), a, s) \
            == to_signed64(to_unsigned64(a) >> s)


class TestImmediates:
    def test_addi_andi_ori(self):
        b = ProgramBuilder()
        b.data_i64("out", [0, 0, 0])
        b.li("t0", 0xF0)
        b.addi("t1", "t0", -1)
        b.andi("t2", "t0", 0x3C)
        b.ori("t3", "t0", 0x0F)
        b.la("a0", "out")
        b.sd("t1", 0, "a0")
        b.sd("t2", 8, "a0")
        b.sd("t3", 16, "a0")
        b.halt()
        state, p, _ = run_and_state(b)
        base = p.data_symbols["out"]
        assert state.memory.load(base, 8) == 0xEF
        assert state.memory.load(base + 8, 8) == 0x30
        assert state.memory.load(base + 16, 8) == 0xFF

    def test_slti(self):
        b = ProgramBuilder()
        b.data_i64("out", [9])
        b.li("t0", -5)
        b.slti("t1", "t0", 0)
        b.la("a0", "out")
        b.sd("t1", 0, "a0")
        b.halt()
        state, p, _ = run_and_state(b)
        assert state.memory.load(p.data_symbols["out"], 8) == 1


class TestMemoryOps:
    def test_lw_sign_extends(self):
        b = ProgramBuilder()
        b.data_i32("v", [-2])
        b.data_i64("out", [0])
        b.la("t0", "v")
        b.lw("t1", 0, "t0")
        b.la("a0", "out")
        b.sd("t1", 0, "a0")
        b.halt()
        state, p, _ = run_and_state(b)
        assert state.memory.load(p.data_symbols["out"], 8) == -2

    def test_lbu_zero_extends(self):
        b = ProgramBuilder()
        b.data_bytes("v", b"\xff")
        b.align(8)
        b.data_i64("out", [0])
        b.la("t0", "v")
        b.lbu("t1", 0, "t0")
        b.la("a0", "out")
        b.sd("t1", 0, "a0")
        b.halt()
        state, p, _ = run_and_state(b)
        assert state.memory.load(p.data_symbols["out"], 8) == 255

    def test_sw_truncates(self):
        b = ProgramBuilder()
        b.data_i64("out", [0])
        b.li64("t0", 0x1_0000_0002)
        b.la("a0", "out")
        b.sw("t0", 0, "a0")
        b.halt()
        state, p, _ = run_and_state(b)
        assert state.memory.load(p.data_symbols["out"], 8) == 2

    def test_r0_load_discarded(self):
        b = ProgramBuilder()
        b.data_i64("v", [77])
        b.la("t0", "v")
        b.emit_r0_load = b.ld("zero", 0, "t0")
        b.halt()
        state, _, _ = run_and_state(b)
        assert state.regs[0] == 0


class TestControl:
    def test_counting_loop(self):
        p = build_counting_loop(10)
        state = FunctionalSimulator(p).run()
        assert state.memory.load(p.data_symbols["out"], 8) == 45

    def test_jal_jr_subroutine(self):
        b = ProgramBuilder()
        b.data_i64("out", [0])
        b.j("main")
        b.label("double")          # t0 = t0 * 2; return
        b.add("t0", "t0", "t0")
        b.jr("ra")
        b.label("main")
        b.li("t0", 21)
        b.jal("double")
        b.la("a0", "out")
        b.sd("t0", 0, "a0")
        b.halt()
        state, p, _ = run_and_state(b)
        assert state.memory.load(p.data_symbols["out"], 8) == 42

    def test_beqz_bnez(self):
        b = ProgramBuilder()
        b.data_i64("out", [0])
        b.li("t0", 0)
        b.li("t1", 1)
        b.beqz("t0", "a")
        b.li("t2", 111)      # skipped
        b.label("a")
        b.bnez("t1", "b")
        b.li("t2", 222)      # skipped
        b.label("b")
        b.addi("t2", "t2", 5)
        b.la("a0", "out")
        b.sd("t2", 0, "a0")
        b.halt()
        state, p, _ = run_and_state(b)
        assert state.memory.load(p.data_symbols["out"], 8) == 5

    def test_infinite_loop_detected(self):
        b = ProgramBuilder()
        b.label("spin")
        b.j("spin")
        p = b.build()
        with pytest.raises(SimulationError):
            FunctionalSimulator(p).run(max_steps=1000)

    def test_pc_out_of_range(self):
        b = ProgramBuilder()
        b.li("ra", 9999)
        b.jr("ra")
        p = b.build()
        with pytest.raises(SimulationError):
            FunctionalSimulator(p).run()


class TestFloat:
    def test_arith_pipeline(self, fp_kernel):
        state = FunctionalSimulator(fp_kernel).run()
        base = fp_kernel.data_symbols["outv"]
        for i in range(6):
            expected = (0.5 * i) * (1.5 * i + 1.0) + 0.5
            assert state.memory.load_f64(base + 8 * i) == expected

    def test_compare_and_convert(self):
        b = ProgramBuilder()
        b.data_f64("v", [2.5, 7.0])
        b.data_i64("out", [0, 0])
        b.la("t0", "v")
        b.fld("f0", 0, "t0")
        b.fld("f1", 8, "t0")
        b.flt("t1", "f0", "f1")
        b.ftoi("t2", "f1")
        b.la("a0", "out")
        b.sd("t1", 0, "a0")
        b.sd("t2", 8, "a0")
        b.halt()
        state, p, _ = run_and_state(b)
        assert state.memory.load(p.data_symbols["out"], 8) == 1
        assert state.memory.load(p.data_symbols["out"] + 8, 8) == 7

    def test_itof_fsqrt(self):
        b = ProgramBuilder()
        b.data_f64("out", [0.0])
        b.li("t0", 16)
        b.itof("f0", "t0")
        b.fsqrt("f1", "f0")
        b.la("a0", "out")
        b.fsd("f1", 0, "a0")
        b.halt()
        state, p, _ = run_and_state(b)
        assert state.memory.load_f64(p.data_symbols["out"]) == 4.0

    def test_fdiv_by_zero_raises(self):
        b = ProgramBuilder()
        b.data_f64("z", [0.0])
        b.la("t0", "z")
        b.fld("f0", 0, "t0")
        b.fdiv("f1", "f0", "f0")
        b.halt()
        with pytest.raises(SimulationError):
            FunctionalSimulator(b.build()).run()

    def test_fsqrt_negative_raises(self):
        b = ProgramBuilder()
        b.data_f64("v", [-1.0])
        b.la("t0", "v")
        b.fld("f0", 0, "t0")
        b.fsqrt("f1", "f0")
        b.halt()
        with pytest.raises(SimulationError):
            FunctionalSimulator(b.build()).run()

    def test_fmin_fmax_fneg_fabs(self):
        b = ProgramBuilder()
        b.data_f64("v", [3.0, -4.0])
        b.data_f64("out", [0.0, 0.0, 0.0, 0.0])
        b.la("t0", "v")
        b.fld("f0", 0, "t0")
        b.fld("f1", 8, "t0")
        b.fmin("f2", "f0", "f1")
        b.fmax("f3", "f0", "f1")
        b.fneg("f4", "f0")
        b.fabs_("f5", "f1")
        b.la("a0", "out")
        b.fsd("f2", 0, "a0")
        b.fsd("f3", 8, "a0")
        b.fsd("f4", 16, "a0")
        b.fsd("f5", 24, "a0")
        b.halt()
        state, p, _ = run_and_state(b)
        base = p.data_symbols["out"]
        assert state.memory.load_f64(base) == -4.0
        assert state.memory.load_f64(base + 8) == 3.0
        assert state.memory.load_f64(base + 16) == -3.0
        assert state.memory.load_f64(base + 24) == 4.0


class TestHarness:
    def test_load_program_initialises_sp(self, counting_loop):
        state = load_program(counting_loop)
        from repro.isa.registers import NAME_TO_REG

        assert state.regs[NAME_TO_REG["sp"]] == STACK_TOP - 64

    def test_queue_op_outside_decoupled_rejected(self):
        from repro.isa import Instruction

        b = ProgramBuilder()
        b.emit(Instruction(op=Op.PUSH_LDQ, rs1=8))
        b.halt()
        with pytest.raises(SimulationError):
            FunctionalSimulator(b.build()).run()

    def test_instruction_count(self, counting_loop):
        sim = FunctionalSimulator(counting_loop)
        sim.run()
        # 3 setup + 10 * 3 loop + la + sd + halt
        assert sim.instructions_executed == 3 + 30 + 3
