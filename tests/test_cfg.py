"""Tests for basic-block construction and CFG edges."""

from repro.asm.builder import ProgramBuilder
from repro.slicer.cfg import ControlFlowGraph

from .conftest import build_counting_loop


class TestBlocks:
    def test_straight_line_single_block(self):
        b = ProgramBuilder()
        b.li("t0", 1)
        b.addi("t0", "t0", 1)
        b.halt()
        cfg = ControlFlowGraph(b.build())
        assert len(cfg) == 1
        assert cfg.blocks[0].size == 3

    def test_loop_blocks(self):
        cfg = ControlFlowGraph(build_counting_loop())
        # setup | loop body | tail
        assert len(cfg) == 3
        loop = cfg.blocks[cfg.block_of[3]]
        assert loop.start == 3
        assert cfg.block_of[4] == loop.index

    def test_loop_edges(self):
        cfg = ControlFlowGraph(build_counting_loop())
        loop = cfg.blocks[cfg.block_of[3]]
        assert loop.index in loop.successors        # back edge
        assert any(s != loop.index for s in loop.successors)  # exit edge
        assert loop.index in loop.predecessors

    def test_branch_target_is_leader(self):
        b = ProgramBuilder()
        b.li("t0", 0)
        b.beq("t0", "zero", "skip")
        b.addi("t0", "t0", 1)
        b.label("skip")
        b.halt()
        cfg = ControlFlowGraph(b.build())
        assert cfg.blocks[cfg.block_of[3]].start == 3

    def test_halt_terminates_block(self):
        b = ProgramBuilder()
        b.halt()
        b.nop()  # dead code after halt forms its own block
        cfg = ControlFlowGraph(b.build())
        assert cfg.blocks[cfg.block_of[0]].successors == []

    def test_unconditional_jump_single_successor(self):
        b = ProgramBuilder()
        b.j("end")
        b.nop()
        b.label("end")
        b.halt()
        cfg = ControlFlowGraph(b.build())
        first = cfg.blocks[cfg.block_of[0]]
        assert first.successors == [cfg.block_of[2]]

    def test_jal_jr_conservative_edges(self):
        b = ProgramBuilder()
        b.j("main")
        b.label("fn")
        b.jr("ra")
        b.label("main")
        b.jal("fn")
        b.halt()
        cfg = ControlFlowGraph(b.build())
        fn_block = cfg.blocks[cfg.block_of[1]]
        # jr may return to the jal's return point.
        return_block = cfg.block_of[3]
        assert return_block in fn_block.successors

    def test_membership_and_entry(self):
        p = build_counting_loop()
        cfg = ControlFlowGraph(p)
        assert p.entry in cfg.entry_block()
        assert 2 in cfg.blocks[cfg.block_of[2]]

    def test_networkx_export(self):
        cfg = ControlFlowGraph(build_counting_loop())
        g = cfg.to_networkx()
        assert g.number_of_nodes() == len(cfg)
        assert g.number_of_edges() == sum(len(b.successors) for b in cfg.blocks)

    def test_empty_program(self):
        from repro.asm.program import Program

        cfg = ControlFlowGraph(Program())
        assert len(cfg) == 0
