"""Service observability (repro.service.observability and friends).

Covers the whole scrape-and-trace surface added around the durable
service:

* **Prometheus exposition** — ``render_prometheus`` (cumulative
  ``le`` buckets, ``+Inf``, ``_sum``/``_count``, label escaping,
  deterministic ordering) and the ``render_key``/``parse_key``
  round trip it rides on.
* **Merge determinism** — labeled histogram snapshots merged in any
  order produce byte-identical snapshots (scrape order must never
  change totals).
* **Queue/executor/worker instrumentation** — every transition moves
  its counter, queue-wait / execution / end-to-end latency histograms
  observe, and a real ``Worker.run_one`` leaves behind a span file and
  a run-ledger entry.
* **Worker status + fleet metrics** — atomic publish, liveness window,
  scrape-time gauges, and the aggregated ``/metrics`` + readiness
  ``/health`` HTTP endpoints.
* **Job-trace stitching** — ``stitch_job_trace`` reassembles client,
  queue and worker lanes into one valid Chrome/Perfetto trace with
  cross-process parent links.
* **Hardening regressions** — ``read_events`` survives a torn final
  JSONL line (including split multi-byte UTF-8), and the cache stats
  account the service spool.
"""

from __future__ import annotations

import io
import json
import os
import time
import urllib.request
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.experiments import RunCache, RunLedger, ledger_path
from repro.service import (
    JobQueue,
    ServiceClient,
    ServiceServer,
    Worker,
    fleet_metrics,
    normalize_trace,
    publish_worker_status,
    read_worker_statuses,
    render_fleet_line,
    render_fleet_table,
    resolve_job_id,
    run_top,
    stitch_job_trace,
)
from repro.telemetry import StatusLine, metrics, spans
from repro.telemetry.metrics import (
    MetricsRegistry,
    parse_key,
    render_key,
    render_prometheus,
)

POINTER_SPEC = {"kind": "suite", "benchmarks": ["pointer"],
                "modes": ["superscalar"], "quick": True}


@pytest.fixture(autouse=True)
def _clean_metrics():
    """The queue counts into the process-global registry; isolate it."""
    metrics.reset()
    yield
    metrics.reset()


def make_queue(tmp_path, **kwargs):
    kwargs.setdefault("retry_backoff", 0.0)
    queue = JobQueue(tmp_path / "svc", **kwargs)
    queue.ensure_layout()
    return queue


# ----------------------------------------------------------------------
# Prometheus text exposition.

class TestRenderPrometheus:
    def test_counters_gauges_and_types(self):
        reg = MetricsRegistry()
        reg.inc("jobs_completed", 3)
        reg.inc("http_requests", 2, method="GET")
        reg.inc("http_requests", 1, method="POST")
        reg.gauge("workers_live", 2.0)
        text = render_prometheus(reg.snapshot())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# TYPE http_requests counter" in lines
        assert lines.count("# TYPE http_requests counter") == 1
        assert 'http_requests{method="GET"} 2' in lines
        assert 'http_requests{method="POST"} 1' in lines
        assert "jobs_completed 3" in lines
        assert "# TYPE workers_live gauge" in lines
        assert "workers_live 2" in lines

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        for value in (0.05, 0.5, 5.0):
            reg.observe("job_latency_seconds", value)
        text = render_prometheus(reg.snapshot())
        lines = text.splitlines()
        assert "# TYPE job_latency_seconds histogram" in lines
        buckets = [l for l in lines
                   if l.startswith("job_latency_seconds_bucket")]
        # Decade buckets -> cumulative: 0.05 <= 0.1, 0.5 <= 1, 5.0 <= 10.
        assert buckets[-1] == 'job_latency_seconds_bucket{le="+Inf"} 3'
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert "job_latency_seconds_count 3" in lines
        sum_line = next(l for l in lines
                        if l.startswith("job_latency_seconds_sum"))
        assert abs(float(sum_line.split()[1]) - 5.55) < 1e-9
        assert any(l.startswith("job_latency_seconds_min") for l in lines)
        assert any(l.startswith("job_latency_seconds_max") for l in lines)

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.inc("events", 1, detail='say "hi"\nback\\slash')
        text = render_prometheus(reg.snapshot())
        assert r'detail="say \"hi\"\nback\\slash"' in text

    def test_output_is_deterministic_and_empty_snapshot_is_empty(self):
        reg = MetricsRegistry()
        reg.inc("b", 1)
        reg.inc("a", 1)
        reg.gauge("z", 1.0)
        assert render_prometheus(reg.snapshot()) == \
            render_prometheus(reg.snapshot())
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_render_parse_key_round_trip(self):
        key = render_key("http_requests", {"method": "GET", "code": "200"})
        name, labels = parse_key(key)
        assert name == "http_requests"
        assert labels == {"method": "GET", "code": "200"}
        assert parse_key("plain") == ("plain", {})


class TestMergeDeterminism:
    def test_labeled_histograms_merge_order_independent(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for i in range(40):
            (a if i % 2 else b).observe("job_cell_seconds",
                                        10.0 ** (i % 7 - 3),
                                        benchmark=f"bench{i % 3}")
            (a if i % 3 else b).inc("jobs_executed",
                                    disposition="completed")
            a.gauge_max("peak", float(i))
            b.gauge_max("peak", float(40 - i))
        snap_a, snap_b = a.snapshot(), b.snapshot()

        ab = MetricsRegistry()
        ab.merge(snap_a)
        ab.merge(snap_b)
        ba = MetricsRegistry()
        ba.merge(snap_b)
        ba.merge(snap_a)
        assert json.dumps(ab.snapshot(), sort_keys=True) == \
            json.dumps(ba.snapshot(), sort_keys=True)
        # And the rendered exposition is byte-identical too.
        assert render_prometheus(ab.snapshot()) == \
            render_prometheus(ba.snapshot())


# ----------------------------------------------------------------------
# Trace-context validation.

class TestNormalizeTrace:
    def test_valid_context_is_canonicalized(self):
        trace = normalize_trace({"pid": 123, "span": "7b.1",
                                 "t_ns": 5_000, "junk": "dropped"})
        assert trace == {"pid": 123, "span": "7b.1", "t_ns": 5_000}

    @pytest.mark.parametrize("bad", [
        None, "nope", 42, [], {},
        {"pid": -1, "span": "a", "t_ns": 1},
        {"pid": True, "span": "a", "t_ns": 1},
        {"pid": 1, "span": "", "t_ns": 1},
        {"pid": 1, "span": "x" * 65, "t_ns": 1},
        {"pid": 1, "span": "a", "t_ns": 0},
        {"pid": 1, "span": "a"},
    ])
    def test_malformed_contexts_degrade_to_none(self, bad):
        assert normalize_trace(bad) is None


# ----------------------------------------------------------------------
# Queue instrumentation.

class TestQueueMetrics:
    def test_submit_claim_complete_move_counters_and_histograms(
            self, tmp_path):
        queue = make_queue(tmp_path)
        record, _ = queue.submit(dict(POINTER_SPEC))
        queue.submit(dict(POINTER_SPEC))  # dedup join
        claimed = queue.claim("w0")
        queue.complete(claimed, {"ok": True})

        snap = metrics.snapshot()
        counters = snap["counters"]
        assert counters["jobs_submitted"] == 1
        assert counters["jobs_deduplicated"] == 1
        assert counters["jobs_claimed"] == 1
        assert counters["jobs_completed"] == 1
        assert snap["histograms"]["job_queue_wait_seconds"]["count"] == 1
        assert snap["histograms"]["job_latency_seconds"]["count"] == 1
        assert record.job_id == claimed.job_id

    def test_failure_retry_and_quarantine_counters(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=2)
        queue.submit(dict(POINTER_SPEC))
        queue.fail(queue.claim("w0"), "boom")
        assert metrics.snapshot()["counters"]["jobs_retried"] == 1
        queue.fail(queue.claim("w0"), "boom again")
        counters = metrics.snapshot()["counters"]
        assert counters["jobs_failed"] == 2
        assert counters["jobs_quarantined"] == 1

    def test_backpressure_rejections_counted(self, tmp_path):
        queue = make_queue(tmp_path, max_depth=1)
        queue.submit(dict(POINTER_SPEC))
        with pytest.raises(Exception):
            queue.submit({**POINTER_SPEC, "seed": 9})
        assert metrics.snapshot()["counters"]["backpressure_rejections"] == 1

    def test_trace_context_is_stored_but_never_affects_dedup(self, tmp_path):
        queue = make_queue(tmp_path)
        trace = {"pid": 7, "span": "7.submit", "t_ns": time.time_ns()}
        record, created = queue.submit(dict(POINTER_SPEC), trace=trace)
        assert created and record.trace == trace
        again, created = queue.submit(
            dict(POINTER_SPEC), trace={"pid": 8, "span": "8.submit",
                                       "t_ns": time.time_ns()})
        assert not created and again.job_id == record.job_id
        # Reload from disk: the context survived the spool round trip.
        assert queue.get(record.job_id).trace == trace


# ----------------------------------------------------------------------
# Event/span file hardening.

class TestSpoolFiles:
    def test_read_events_tolerates_truncated_final_line(self, tmp_path):
        queue = make_queue(tmp_path)
        record, _ = queue.submit(dict(POINTER_SPEC))
        good = queue.read_events(record.job_id)
        assert [e["kind"] for e in good] == ["submitted"]
        # Simulate a crash mid-append: a torn final line whose tail even
        # splits a multi-byte UTF-8 sequence.
        with open(queue.events_path(record.job_id), "ab") as fh:
            fh.write(b'{"kind": "state", "state": "don')
            fh.write(b'e", "t": 1.0, "x": "\xe2\x82')  # half of "€"
        assert queue.read_events(record.job_id) == good

    def test_append_and_read_spans_round_trip(self, tmp_path):
        queue = make_queue(tmp_path)
        record, _ = queue.submit(dict(POINTER_SPEC))
        tracer = spans.SpanTracer()
        with tracer.span("job x", cat="job"):
            pass
        assert queue.append_spans(record.job_id, tracer.records) == 1
        # Torn tail and junk entries are skipped, not fatal.
        with open(queue.spans_path(record.job_id), "ab") as fh:
            fh.write(b'[1, 2]\n{"name": "no-t0"}\n{"name": "torn\xe2')
        got = queue.read_spans(record.job_id)
        assert len(got) == 1 and got[0]["name"] == "job x"
        assert got[0]["pid"] == os.getpid()


# ----------------------------------------------------------------------
# Worker status files and fleet aggregation.

class TestWorkerStatus:
    def test_publish_and_read_with_liveness_window(self, tmp_path):
        queue = make_queue(tmp_path, lease_ttl=5.0)
        metrics.inc("jobs_completed", 2)
        publish_worker_status(queue, "w0", "idle", jobs_run=2)
        statuses = read_worker_statuses(queue)
        assert len(statuses) == 1
        status = statuses[0]
        assert status["worker"] == "w0" and status["state"] == "idle"
        assert status["alive"] is True and status["age"] < 5.0
        assert status["metrics"]["counters"]["jobs_completed"] == 2
        # An old status falls out of the liveness window.
        stale = json.loads(queue.status_path("w0").read_text())
        stale["time"] = time.time() - 120.0
        queue.status_path("w0").write_text(json.dumps(stale))
        assert read_worker_statuses(queue)[0]["alive"] is False

    def test_unparsable_status_files_are_skipped(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.workers_dir().mkdir(parents=True, exist_ok=True)
        (queue.workers_dir() / "torn.json").write_bytes(b'{"worker": "w')
        (queue.workers_dir() / "list.json").write_text("[1]")
        publish_worker_status(queue, "ok", "idle")
        assert [s["worker"] for s in read_worker_statuses(queue)] == ["ok"]

    def test_fleet_metrics_merges_and_overlays_gauges(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.submit(dict(POINTER_SPEC))
        queue.submit({**POINTER_SPEC, "seed": 5})
        queue.claim("w0")
        metrics.inc("jobs_completed", 4)
        publish_worker_status(queue, "w0", "running", jobs_run=4)

        base = MetricsRegistry()
        base.inc("http_requests", 7, method="GET")
        snap = fleet_metrics(queue, base_snapshot=base.snapshot(),
                             extra_gauges={"service_draining": 1.0})
        assert snap["counters"]["jobs_completed"] == 4
        assert snap["counters"]["http_requests{method=GET}"] == 7
        gauges = snap["gauges"]
        assert gauges["jobs_depth{state=pending}"] == 1
        assert gauges["jobs_depth{state=leased}"] == 1
        assert gauges["oldest_pending_age_seconds"] >= 0.0
        assert gauges["max_lease_age_seconds"] >= 0.0
        assert gauges["workers_known"] == 1
        assert gauges["workers_live"] == 1
        assert gauges["service_draining"] == 1.0


# ----------------------------------------------------------------------
# End-to-end: worker run -> spans, ledger, stitched trace.

class TestJobTrace:
    def test_resolve_job_id_prefixes(self, tmp_path):
        queue = make_queue(tmp_path)
        a, _ = queue.submit(dict(POINTER_SPEC))
        b, _ = queue.submit({**POINTER_SPEC, "seed": 5})
        assert resolve_job_id(queue, a.job_id) == a.job_id
        unique = a.job_id[:-1] if a.job_id[:-1] != b.job_id[:-1] \
            else a.job_id
        assert resolve_job_id(queue, unique) == a.job_id
        with pytest.raises(ServiceError, match="unknown job"):
            resolve_job_id(queue, "zzz-not-a-job")
        with pytest.raises(ServiceError, match="ambiguous"):
            resolve_job_id(queue, "")

    def test_stitch_requires_some_history(self, tmp_path):
        queue = make_queue(tmp_path)
        with pytest.raises(ServiceError, match="unknown job"):
            stitch_job_trace(queue, "nope")

    def test_run_one_leaves_spans_ledger_and_a_valid_trace(self, tmp_path):
        queue = make_queue(tmp_path)
        cache = RunCache(tmp_path / "cache")
        trace = {"pid": 4242, "span": "1092.submit",
                 "t_ns": time.time_ns()}
        record, _ = queue.submit(dict(POINTER_SPEC), trace=trace)
        worker = Worker(queue, "w0", cache=cache,
                        stream=open(os.devnull, "w"))
        assert worker.run_one(queue.claim("w0")) == "completed"

        # 1. The worker persisted its span file beside the job.
        persisted = queue.read_spans(record.job_id)
        names = {s["name"] for s in persisted}
        assert f"job {record.job_id}" in names and "execute" in names
        assert any(s["cat"] == "cell" for s in persisted)
        job_span = next(s for s in persisted
                        if s["name"] == f"job {record.job_id}")
        assert job_span["args"]["parent_span"] == trace["span"]

        # 2. The run ledger recorded the job under its job id.
        entries = RunLedger(ledger_path(cache.root)).entries()
        mine = [e for e in entries if e["run_id"] == record.job_id]
        assert len(mine) == 1
        entry = mine[0]
        assert entry["command"] == "job"
        assert entry["outcome"] == "completed"
        assert entry["worker"] == "w0"
        assert entry["metrics"]["counters"]["job_cells_completed"] == 1

        # 3. The stitched trace spans client, queue and worker lanes.
        records, lane_names = stitch_job_trace(queue, record.job_id)
        assert lane_names[4242].startswith("hidisc client")
        assert lane_names[0] == "hidisc job queue"
        worker_pids = [p for p in lane_names if p not in (0, 4242)]
        assert len(worker_pids) == 1

        # Cross-process parent links: client -> queue root -> worker job.
        by_sid = {r.sid: r for r in records}
        root = next(r for r in records
                    if r.name == f"job {record.job_id}" and r.pid == 0)
        assert root.parent == trace["span"]
        worker_root = next(r for r in records
                           if r.name == f"job {record.job_id}"
                           and r.pid == worker_pids[0])
        assert worker_root.parent == root.sid
        assert by_sid[worker_root.sid] is worker_root

        # 4. write_orchestration_trace emits one valid JSON trace whose
        #    every event parses and whose lanes are named.
        out = tmp_path / "trace.json"
        count = spans.write_orchestration_trace(records, out,
                                                lane_names=lane_names)
        data = json.loads(out.read_text())
        events = data["traceEvents"]
        assert count == len(events) > 0
        metas = {e["args"]["name"] for e in events
                 if e.get("ph") == "M" and e.get("name") == "process_name"}
        assert metas == set(lane_names.values())
        assert {e["pid"] for e in events} == set(lane_names)
        # Residency spans reconstructed from the event stream.
        cats = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert "queue-state" in cats and "cell" in cats


# ----------------------------------------------------------------------
# HTTP endpoints: /metrics (text + json) and readiness /health.

@pytest.fixture
def http_service(tmp_path):
    server = ServiceServer(tmp_path / "svc", port=0, workers=0,
                           max_depth=4, lease_ttl=5.0,
                           stream=open(os.devnull, "w"))
    server.start()
    try:
        yield server, ServiceClient(f"http://127.0.0.1:{server.port}")
    finally:
        server.drain()


class TestHttpObservability:
    def test_metrics_json_and_text_agree(self, http_service):
        server, client = http_service
        client.submit(POINTER_SPEC)
        payload = client.metrics()
        assert payload["counts"]["pending"] == 1
        counters = payload["metrics"]["counters"]
        assert counters["jobs_submitted"] == 1
        gauges = payload["metrics"]["gauges"]
        assert gauges["jobs_depth{state=pending}"] == 1
        assert gauges["service_draining"] == 0.0

        text = client.metrics_text()
        assert "# TYPE jobs_submitted counter" in text
        assert 'jobs_depth{state="pending"} 1' in text
        # Request accounting covers the scrapes themselves.
        assert 'http_requests{method="GET"}' in text

    def test_metrics_content_type_is_prometheus(self, http_service):
        server, _ = http_service
        with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics") as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")

    def test_health_is_503_until_a_worker_is_alive(self, http_service):
        server, client = http_service
        # /healthz stays unconditional liveness...
        assert "version" in client.health()
        # ...while /health is readiness: no workers -> 503.
        with pytest.raises(ServiceError, match="HTTP 503"):
            client.fleet()
        publish_worker_status(server.queue, "w0", "idle")
        fleet = client.fleet()
        assert fleet["workers_alive"] == 1
        assert fleet["fleet"][0]["worker"] == "w0"
        assert fleet["fleet"][0]["alive"] is True


# ----------------------------------------------------------------------
# Live fleet rendering and `jobs top`.

class _StubClient:
    def __init__(self, payload, jobs):
        self.payload, self._jobs, self.calls = payload, jobs, 0

    def metrics(self):
        self.calls += 1
        return self.payload

    def jobs(self):
        return self._jobs


class TestFleetStatus:
    PAYLOAD = {
        "counts": {"pending": 2, "leased": 1, "done": 3,
                   "failed": 0, "quarantined": 1},
        "metrics": {
            "counters": {"jobs_completed": 3, "jobs_retried": 1},
            "gauges": {"workers_live": 1, "workers_known": 2,
                       "oldest_pending_age_seconds": 4.25},
        },
        "workers": [
            {"worker": "w0", "state": "running", "alive": True,
             "jobs_run": 3, "job": "abc-1"},
            {"worker": "w1", "state": "idle", "alive": False,
             "jobs_run": 0, "job": None},
        ],
    }
    JOBS = [{"job_id": "abc-1", "state": "leased", "attempts": 1,
             "cells_done": 2},
            {"job_id": "abc-2", "state": "done", "attempts": 1,
             "cells_done": 4}]

    def test_render_fleet_line(self):
        line = render_fleet_line(self.PAYLOAD)
        assert line.startswith("[top] pending=2 leased=1 done=3")
        assert "workers 1/2" in line
        assert "completed=3 retried=1" in line
        assert "oldest_wait=4.2s" in line

    def test_render_fleet_table(self):
        table = render_fleet_table(self.PAYLOAD, self.JOBS)
        assert "w0" in table and "running" in table and "abc-1" in table
        assert "yes" in table and "no" in table
        # Only active jobs are listed.
        assert "abc-2" not in table

    def test_run_top_non_tty_contract(self):
        stream = io.StringIO()
        client = _StubClient(self.PAYLOAD, self.JOBS)
        code = run_top(client, interval=0.0, iterations=3,
                       stream=stream, live=False)
        assert code == 0 and client.calls == 3
        text = stream.getvalue()
        assert "\r" not in text, "non-TTY output must stay plain lines"
        assert text.count("[top] pending=2") == 3
        assert "worker" in text and "w0" in text

    def test_run_top_tty_rewrites_in_place(self):
        stream = io.StringIO()
        client = _StubClient(self.PAYLOAD, self.JOBS)
        run_top(client, interval=0.0, iterations=2,
                stream=stream, live=True)
        text = stream.getvalue()
        assert text.count("\r") >= 2
        head = text.split("\n", 1)[0]
        assert head.count("[top] pending=2") == 2, \
            "refreshes rewrite one line, not append"


class TestStatusLine:
    def test_live_rewrites_and_pads_shrinking_text(self):
        stream = io.StringIO()
        line = StatusLine(stream, live=True)
        line.update("long status line")
        line.update("short")
        line.finish()
        line.finish()  # idempotent
        text = stream.getvalue()
        assert text.startswith("\rlong status line")
        assert "\rshort" in text
        # The shorter update padded over the longer one.
        assert "\rshort" + " " * (len("long status line") - len("short")) \
            in text
        assert text.endswith("\r")

    def test_non_tty_is_plain_lines(self):
        stream = io.StringIO()
        line = StatusLine(stream, live=False)
        line.update("a")
        line.update("b")
        line.finish()
        assert stream.getvalue() == "a\nb\n"


# ----------------------------------------------------------------------
# Cache stats account the service spool.

class TestCacheServiceStats:
    def test_stats_count_spool_bytes(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        stats = cache.stats()
        assert stats["service_files"] == 0 and stats["service_bytes"] == 0
        queue = JobQueue(cache.root / "service")
        queue.ensure_layout()
        queue.submit(dict(POINTER_SPEC))
        stats = cache.stats()
        assert stats["service_files"] >= 2  # record + events at least
        assert stats["service_bytes"] > 0
        files = cache.service_files()
        assert all(f.is_file() for f in files)
        assert len(files) == stats["service_files"]
