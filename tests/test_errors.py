"""Every ReproError subclass is reachable through a public entry point and
carries an actionable message.

Each test drives the real API (no hand-constructed exceptions except the
hierarchy checks) and asserts on message *content* — an error that names
neither the offending object nor the fix is a regression.
"""

from __future__ import annotations

import copy

import pytest

from repro.asm import ProgramBuilder, assemble
from repro.config import MachineConfig
from repro.errors import (
    AssemblyError,
    ConfigError,
    CycleLimitError,
    DeadlockError,
    EncodingError,
    MemoryFault,
    QueueProtocolError,
    ReproError,
    SimulationError,
    SlicingError,
    ValidationError,
    VerificationError,
    WorkloadError,
)
from repro.experiments import prepare
from repro.experiments.runner import build_machine
from repro.isa.encoding import decode_instruction
from repro.resilience import FaultInjector, FaultPlan, FaultSite, verified_run
from repro.sim import ArchQueue, FunctionalSimulator, MainMemory
from repro.slicer import extract_cmas, separate, validate_decoupled_static
from repro.workloads import FieldWorkload
from tests.conftest import build_counting_loop


@pytest.fixture(scope="module")
def field_cw():
    return prepare(FieldWorkload(n=500), MachineConfig())


def test_hierarchy_every_subclass_is_a_repro_error():
    for cls in (AssemblyError, ConfigError, CycleLimitError, DeadlockError,
                EncodingError, MemoryFault, QueueProtocolError,
                SimulationError, SlicingError, ValidationError,
                VerificationError, WorkloadError):
        assert issubclass(cls, ReproError)
    # The simulation family is catchable as one group.
    for cls in (CycleLimitError, DeadlockError, VerificationError,
                MemoryFault, QueueProtocolError):
        assert issubclass(cls, SimulationError)
    assert issubclass(ValidationError, SlicingError)


def test_assembly_error_duplicate_label():
    b = ProgramBuilder("dup")
    b.label("loop")
    with pytest.raises(AssemblyError, match="duplicate label 'loop'"):
        b.label("loop")


def test_assembly_error_carries_source_line():
    with pytest.raises(AssemblyError) as exc_info:
        assemble("addi r1, r0, 1\n???")
    assert exc_info.value.line == 2
    assert "line 2" in str(exc_info.value)


def test_encoding_error_rejects_bad_words():
    with pytest.raises(EncodingError, match="out of range"):
        decode_instruction(-1)
    with pytest.raises(EncodingError, match="out of range"):
        decode_instruction(1 << 64)


def test_simulation_error_names_unknown_model(field_cw, config):
    with pytest.raises(SimulationError, match="unknown model 'warp'"):
        build_machine(field_cw, config, "warp")


def test_cycle_limit_error_names_benchmark_and_both_knobs(field_cw, config):
    machine = build_machine(field_cw, config, "hidisc")
    with pytest.raises(CycleLimitError) as exc_info:
        machine.run(max_cycles=10)
    err = exc_info.value
    assert err.benchmark == "field"
    assert err.mode == "hidisc"
    assert err.max_cycles == 10
    message = str(err)
    # The message must name both ways to raise the budget.
    assert "MachineConfig.max_cycles" in message
    assert "--max-cycles" in message


def test_deadlock_error_carries_forensic_dump(field_cw, config):
    plan = FaultPlan(seed=0, sites=(FaultSite("drop_transfer", at=0),))
    machine = build_machine(field_cw, config, "hidisc",
                            faults=FaultInjector(plan))
    with pytest.raises(DeadlockError) as exc_info:
        machine.run()
    err = exc_info.value
    assert err.dump["benchmark"] == "field"
    assert err.dump["reason"]
    assert "deadlocked at cycle" in str(err)


def test_verification_error_lists_mismatches(field_cw, config):
    """A decoupled trace whose stores reorder must fail --verify with the
    diverging store named in the message."""
    cw = copy.copy(field_cw)
    cw.decoupled_trace = list(field_cw.decoupled_trace)
    text = cw.compilation.decoupled.text
    stores = [i for i, dyn in enumerate(cw.decoupled_trace)
              if text[dyn.pc].is_store]
    a = stores[0]
    b = next(i for i in stores[1:]
             if cw.decoupled_trace[i].addr != cw.decoupled_trace[a].addr)
    cw.decoupled_trace[a], cw.decoupled_trace[b] = \
        cw.decoupled_trace[b], cw.decoupled_trace[a]
    if hasattr(cw, "_oracle_mismatches"):
        del cw._oracle_mismatches
    with pytest.raises(VerificationError) as exc_info:
        verified_run(cw, config, "superscalar")
    err = exc_info.value
    assert err.mismatches
    assert any("store" in m for m in err.mismatches)
    assert "diverged from the functional oracle" in str(err)


def test_memory_fault_out_of_range_and_misaligned():
    memory = MainMemory(1024)
    with pytest.raises(MemoryFault, match="out of range"):
        memory.load(4096, 8)
    with pytest.raises(MemoryFault) as exc_info:
        memory.load(4, 8)
    assert "misaligned 8-byte access" in str(exc_info.value)
    assert exc_info.value.address == 4


def test_queue_protocol_error_names_the_queue():
    queue = ArchQueue("LDQ", capacity=1)
    with pytest.raises(QueueProtocolError, match="pop on empty queue LDQ"):
        queue.pop()
    queue.push(1)
    with pytest.raises(QueueProtocolError, match="push on full queue LDQ"):
        queue.push(2, enforce_capacity=True)


def test_slicing_error_rejects_non_load_miss_seed():
    sep = separate(build_counting_loop())
    with pytest.raises(SlicingError, match="pc 0 is not a load"):
        extract_cmas(sep, {0})


def test_validation_error_flags_unannotated_program():
    with pytest.raises(ValidationError, match="missing stream annotation"):
        validate_decoupled_static(build_counting_loop())


def test_config_error_names_the_field():
    with pytest.raises(ConfigError, match="max_cycles must be >= 1"):
        MachineConfig(max_cycles=0)
    with pytest.raises(ConfigError, match="watchdog_window must be >= 1"):
        MachineConfig(watchdog_window=-5)
    with pytest.raises(ConfigError, match="fetch_width"):
        MachineConfig(fetch_width=0)


def test_workload_error_reports_symbol_and_values():
    workload = FieldWorkload(n=64)
    state = FunctionalSimulator(workload.program).run()
    workload.verify(state)  # the clean run passes
    addr = workload.program.data_symbols["out"]
    state.memory.store(addr, 999_999, 8)
    with pytest.raises(WorkloadError) as exc_info:
        workload.verify(state)
    message = str(exc_info.value)
    assert "field" in message
    assert "out" in message  # names the mismatching output symbol
