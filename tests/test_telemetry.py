"""Telemetry subsystem tests: sinks, stall attribution, CPI-stack sums,
occupancy sampling and end-to-end event tracing.

The central property — asserted here on real compiled benchmarks across
all four machine models — is that every core's CPI-stack components sum
*exactly* to the measured cycle count.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.config import CoreConfig, MachineConfig, TelemetryConfig
from repro.errors import ConfigError
from repro.isa.instruction import Annotations, Instruction
from repro.isa.opcodes import Op
from repro.sim import (
    Machine,
    build_cmas_plan,
    build_queue_plan,
    generate_decoupled_trace,
    generate_trace,
)
from repro.sim.core import TimingCore, WindowEntry
from repro.sim.queues import ArchQueue
from repro.slicer import compile_hidisc
from repro.telemetry import (
    CPI_COMPONENTS,
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    NullSink,
    Sampler,
    TeeSink,
    Telemetry,
    check_stack,
    new_stack,
    render_cpi_stacks,
    stack_total,
)
from repro.telemetry.sampler import take_sample

from .conftest import build_load_compute_store, build_store_loop


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_null_sink_disabled(self):
        sink = NullSink()
        assert sink.enabled is False
        sink.duration("t", "n", 0, 1)
        sink.instant("t", "n", 0)
        sink.counter("t", "n", 0, 1)  # all no-ops

    def test_memory_sink_records_and_selects(self):
        sink = MemorySink()
        sink.duration("CP", "add", 3, 1, {"gid": 7})
        sink.instant("CMP", "cmas_fork", 4)
        sink.counter("queues", "LDQ", 5, 2)
        assert sink.tracks() == {"CP", "CMP", "queues"}
        assert sink.of_kind("counter") == [("counter", "queues", "LDQ", 5, 2)]

    def test_tee_sink_fans_out_and_drops_disabled(self):
        a, b = MemorySink(), MemorySink()
        tee = TeeSink(a, NullSink(), b)
        assert len(tee.sinks) == 2
        tee.instant("t", "x", 1)
        assert len(a.events) == len(b.events) == 1
        assert TeeSink(NullSink()).enabled is False

    def test_memory_sink_cap_keeps_oldest_and_counts_drops(self):
        sink = MemorySink(max_events=2)
        sink.instant("t", "first", 0)
        sink.duration("t", "second", 1, 1)
        sink.counter("t", "third", 2, 5)
        sink.instant("t", "fourth", 3)
        assert [e[2] for e in sink.events] == ["first", "second"]
        assert sink.dropped == 2
        assert sink.close() == {"events": 2, "dropped": 2}

    def test_memory_sink_repr_shows_cap_state(self):
        sink = MemorySink(max_events=3)
        sink.instant("t", "x", 0)
        assert repr(sink) == "MemorySink(events=1, cap=3, dropped=0)"
        assert "cap=unbounded" in repr(MemorySink())

    def test_memory_sink_unbounded_by_default(self):
        sink = MemorySink()
        for i in range(100):
            sink.instant("t", "x", i)
        assert len(sink.events) == 100 and sink.dropped == 0

    def test_memory_sink_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            MemorySink(max_events=0)

    def test_tee_sink_close_reaches_all_children_on_error(self):
        class BoomSink(MemorySink):
            def close(self):
                raise OSError("disk full")

        closed = []

        class TrackingSink(MemorySink):
            def close(self):
                closed.append(self)
                return super().close()

        survivor = TrackingSink()
        tee = TeeSink(BoomSink(), survivor, TrackingSink())
        with pytest.raises(OSError, match="disk full"):
            tee.close()
        assert len(closed) == 2 and closed[0] is survivor

    def test_jsonl_sink_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.duration("AP", "ld", 10, 120, {"addr": 64})
        sink.counter("queues", "LDQ", 11, 3)
        sink.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0] == {"ev": "duration", "track": "AP", "name": "ld",
                            "ts": 10, "dur": 120, "args": {"addr": 64}}
        assert lines[1]["value"] == 3
        assert sink.event_count == 2

    def test_chrome_trace_sink_format(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(path)
        sink.duration("CP", "add", 5, 2)
        sink.instant("CMP", "cmas_fork", 6)
        sink.counter("queues", "LDQ", 7, 4)
        sink.close()
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        thread_names = {e["args"]["name"] for e in events
                        if e.get("name") == "thread_name"}
        assert {"CP", "CMP"} <= thread_names
        x = [e for e in events if e["ph"] == "X"]
        assert x and x[0]["ts"] == 5 and x[0]["dur"] == 2
        c = [e for e in events if e["ph"] == "C"]
        assert c[0]["name"] == "queues/LDQ" and c[0]["args"]["value"] == 4

    def test_telemetry_from_config(self, tmp_path):
        tel = Telemetry.from_config(TelemetryConfig(sample_interval=64))
        assert tel.cpi and not tel.events_on and tel.sample_interval == 64
        tel2 = Telemetry.from_config(
            TelemetryConfig(trace_format="jsonl"), tmp_path / "t.jsonl")
        assert isinstance(tel2.sink, JsonlSink)
        tel3 = Telemetry.from_config(
            TelemetryConfig(), tmp_path / "t.json")
        assert isinstance(tel3.sink, ChromeTraceSink)

    def test_telemetry_config_validation(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(sample_interval=-1)
        with pytest.raises(ConfigError):
            TelemetryConfig(trace_format="xml")
        with pytest.raises(ConfigError):
            TelemetryConfig(lifecycle_max_records=-1)
        with pytest.raises(ConfigError):
            TelemetryConfig(heartbeat_interval=-5)

    def test_telemetry_from_config_lifecycle_and_heartbeat(self, tmp_path):
        tel = Telemetry.from_config(
            TelemetryConfig(lifecycle=True, lifecycle_max_records=128,
                            heartbeat_interval=1000))
        assert tel.lifecycle is not None
        assert tel.lifecycle.max_records == 128
        assert tel.heartbeat is not None and tel.heartbeat.interval == 1000
        off = Telemetry.from_config(TelemetryConfig())
        assert off.lifecycle is None and off.heartbeat is None
        streamed = Telemetry.from_config(
            TelemetryConfig(), lifecycle_jsonl=tmp_path / "life.jsonl")
        assert streamed.lifecycle is not None
        streamed.close()


# ----------------------------------------------------------------------
# Stall attribution unit tests (hand-built window entries)
# ----------------------------------------------------------------------
class _StubMachine:
    """Just enough machine for a TimingCore and its classifiers."""

    def __init__(self, complete_at, waiting_branch=None, fetch_done=False):
        self.complete_at = complete_at
        self._waiting_branch = waiting_branch
        self.fetch_done = fetch_done
        cache = lambda lat: SimpleNamespace(config=SimpleNamespace(latency=lat))
        self.hierarchy = SimpleNamespace(l1=cache(1), l2=cache(12))
        self._tel_cpi = True
        self._tel_events = False
        self._tel_queues = False

    def instr_queue_capacity(self, name):
        return 64


def _core(machine, name="CP"):
    return TimingCore(name, CoreConfig(name=name), machine)


def _entry(instr, deps=(0,), issued=False, pending=None):
    """A hand-built window entry.

    ``pending`` mirrors what dispatch-time wakeup registration would have
    computed: by default every dep is an outstanding producer (the blocked
    case); pass ``pending=0`` to model all producers having completed.
    """
    entry = WindowEntry(gid=1, pos=1, instr=instr, addr=0,
                        deps=list(deps), min_ready=0, is_prefetch=False)
    entry.issued = issued
    entry.pending = len(deps) if pending is None else pending
    return entry


class TestAttributeStall:
    """Each `_attribute_stall` branch fires on a hand-built window entry."""

    def test_ldq_empty_on_pop(self):
        core = _core(_StubMachine(complete_at=[None]))
        core._attribute_stall(_entry(Instruction(op=Op.POP_LDQ, rd=5)), now=9)
        assert core.stats.ldq_empty_stalls == 1

    def test_ldq_empty_on_flagged_operand(self):
        instr = Instruction(op=Op.ADD, rd=3, rs1=4, rs2=5,
                            ann=Annotations(ldq_rs1=True))
        core = _core(_StubMachine(complete_at=[None]))
        core._attribute_stall(_entry(instr), now=9)
        assert core.stats.ldq_empty_stalls == 1

    def test_queue_full_on_push(self):
        core = _core(_StubMachine(complete_at=[None]))
        core._attribute_stall(_entry(Instruction(op=Op.PUSH_LDQ, rs1=4)),
                              now=9)
        assert core.stats.queue_full_stalls == 1

    def test_queue_full_on_to_ldq_load(self):
        instr = Instruction(op=Op.LD, rd=3, rs1=4,
                            ann=Annotations(to_ldq=True))
        core = _core(_StubMachine(complete_at=[None]), name="AP")
        core._attribute_stall(_entry(instr), now=9)
        assert core.stats.queue_full_stalls == 1

    def test_sdq_empty_on_data_starved_store(self):
        instr = Instruction(op=Op.SD, rs1=4, rs2=5,
                            ann=Annotations(sdq_data=True))
        core = _core(_StubMachine(complete_at=[None]), name="AP")
        core._attribute_stall(_entry(instr), now=9)
        assert core.stats.sdq_empty_stalls == 1

    def test_no_attribution_when_deps_ready(self):
        core = _core(_StubMachine(complete_at=[3]))
        core._attribute_stall(
            _entry(Instruction(op=Op.POP_LDQ, rd=5), pending=0), now=9)
        assert core.stats.ldq_empty_stalls == 0

    def test_no_attribution_after_issue(self):
        core = _core(_StubMachine(complete_at=[None]))
        core._attribute_stall(
            _entry(Instruction(op=Op.POP_LDQ, rd=5), issued=True), now=9)
        assert core.stats.ldq_empty_stalls == 0


class TestClassifyCycle:
    """Every CPI-stack bucket is reachable and charged exactly once."""

    def _classified(self, core, now=9):
        before = dict(core.cpi)
        core.classify_cycle(now)
        changed = [k for k in core.cpi if core.cpi[k] != before[k]]
        assert len(changed) == 1, changed
        return changed[0]

    def test_base_when_retiring(self):
        core = _core(_StubMachine(complete_at=[None]))
        core._committed_now = 3
        assert self._classified(core) == "base"

    def test_drained_after_fetch(self):
        core = _core(_StubMachine(complete_at=[], fetch_done=True))
        assert self._classified(core) == "drained"

    def test_instr_queue_empty_while_fetching(self):
        core = _core(_StubMachine(complete_at=[]))
        assert self._classified(core) == "instr_queue_empty"

    def test_branch_recovery_when_frontend_waits(self):
        core = _core(_StubMachine(complete_at=[None], waiting_branch=0))
        assert self._classified(core) == "branch_recovery"

    def test_frontend_when_queued_but_not_dispatched(self):
        core = _core(_StubMachine(complete_at=[]))
        core.enqueue(0, 0, min_ready=0)
        assert self._classified(core) == "frontend"

    def test_mem_wait_class_of_issued_head(self):
        core = _core(_StubMachine(complete_at=[None, 50]))
        entry = _entry(Instruction(op=Op.LD, rd=3, rs1=4), issued=True)
        entry.wait_class = "mem_mem"
        core.window.append(entry)
        assert self._classified(core) == "mem_mem"

    def test_execute_for_issued_non_mem_head(self):
        core = _core(_StubMachine(complete_at=[None, 50]))
        core.window.append(
            _entry(Instruction(op=Op.MUL, rd=3, rs1=4, rs2=5), issued=True))
        assert self._classified(core) == "execute"

    def test_data_dep_for_plain_blocked_head(self):
        core = _core(_StubMachine(complete_at=[None]))
        core.window.append(_entry(Instruction(op=Op.ADD, rd=3, rs1=4, rs2=5)))
        assert self._classified(core) == "data_dep"

    def test_lod_buckets_for_blocked_queue_ops(self):
        for instr, bucket in (
            (Instruction(op=Op.POP_LDQ, rd=5), "ldq_empty"),
            (Instruction(op=Op.PUSH_SDQ, rs1=4), "queue_full"),
            (Instruction(op=Op.SD, rs1=4, ann=Annotations(sdq_data=True)),
             "sdq_empty"),
        ):
            core = _core(_StubMachine(complete_at=[None]))
            core.window.append(_entry(instr))
            assert self._classified(core) == bucket

    def test_fu_contention_when_ready_but_unissued(self):
        core = _core(_StubMachine(complete_at=[3]))
        core.window.append(_entry(Instruction(op=Op.ADD, rd=3, rs1=4,
                                              rs2=5), pending=0))
        assert self._classified(core) == "fu_contention"


# ----------------------------------------------------------------------
# The sum property on real compiled benchmarks
# ----------------------------------------------------------------------
def _compile_all_modes(program, config):
    trace, _ = generate_trace(program)
    comp = compile_hidisc(program, config, trace=trace)
    dtrace, _ = generate_decoupled_trace(comp.decoupled)
    qplan = build_queue_plan(comp.decoupled, dtrace)
    cplan_o = build_cmas_plan(comp.original, trace,
                              config.cmas.trigger_distance)
    cplan_d = build_cmas_plan(comp.decoupled, dtrace,
                              config.cmas.trigger_distance)
    return {
        "superscalar": dict(program=comp.original, trace=trace),
        "cp_ap": dict(program=comp.decoupled, trace=dtrace,
                      queue_plan=qplan),
        "cp_cmp": dict(program=comp.original, trace=trace,
                       cmas_plan=cplan_o),
        "hidisc": dict(program=comp.decoupled, trace=dtrace,
                       queue_plan=qplan, cmas_plan=cplan_d),
    }


class TestCpiStackSums:
    """Property: CPI-stack components sum to cycles, every core, every
    model, on two quick benchmarks."""

    @pytest.mark.parametrize("builder", [
        lambda: build_load_compute_store(96),
        lambda: build_store_loop(64),
    ])
    def test_components_sum_to_cycles(self, config, builder):
        program = builder()
        for mode, kw in _compile_all_modes(program, config).items():
            prog = kw.pop("program")
            trace = kw.pop("trace")
            tel = Telemetry(cpi=True)
            result = Machine(config, prog.copy(), trace, mode=mode,
                             telemetry=tel, **kw).run()
            assert result.cpi_stacks, mode
            for core, stack in result.cpi_stacks.items():
                check_stack(stack, result.cycles, core=f"{mode}/{core}")
                assert set(stack) == set(CPI_COMPONENTS)

    def test_sum_holds_with_warmup_window(self, config):
        """Measurement-window reset re-anchors the stacks too."""
        program = build_load_compute_store(96)
        trace, _ = generate_trace(program)
        tel = Telemetry(cpi=True)
        result = Machine(config, program.copy(), trace, mode="superscalar",
                         warmup_pos=len(trace) // 3, telemetry=tel).run()
        assert result.total_cycles > result.cycles > 0
        check_stack(result.cpi_stacks["main"], result.cycles)

    def test_telemetry_does_not_change_timing(self, config):
        program = build_load_compute_store(96)
        trace, _ = generate_trace(program)
        off = Machine(config, program.copy(), trace,
                      mode="superscalar").run()
        sink = MemorySink()
        on = Machine(config, program.copy(), trace, mode="superscalar",
                     telemetry=Telemetry(sink=sink, cpi=True,
                                         sample_interval=32)).run()
        assert on.cycles == off.cycles
        assert on.l1.demand_misses == off.l1.demand_misses
        assert off.cpi_stacks == {} and on.cpi_stacks

    def test_render_cpi_stacks(self, config):
        program = build_load_compute_store(96)
        trace, _ = generate_trace(program)
        result = Machine(config, program.copy(), trace, mode="superscalar",
                         telemetry=Telemetry(cpi=True)).run()
        text = render_cpi_stacks(result.cpi_stacks, result.cycles)
        assert "base" in text and "total" in text and "100.0" in text
        assert render_cpi_stacks({}, 0).startswith("(no CPI data")


# ----------------------------------------------------------------------
# End-to-end event tracing and sampling on a HiDISC machine
# ----------------------------------------------------------------------
class TestEventStream:
    @pytest.fixture(scope="class")
    def traced(self, request):
        config = MachineConfig()
        program = build_load_compute_store(64)
        kw = _compile_all_modes(program, config)["hidisc"]
        sink = MemorySink()
        tel = Telemetry(sink=sink, cpi=True, sample_interval=16)
        result = Machine(config, kw.pop("program"), kw.pop("trace"),
                         mode="hidisc", telemetry=tel, **kw).run()
        return result, sink, tel

    def test_all_three_cores_emit_issue_events(self, traced):
        result, sink, _ = traced
        assert result.cmas_threads_forked > 0
        lanes = {e[1] for e in sink.of_kind("duration")}
        assert {"CP", "AP", "CMP"} <= lanes

    def test_ldq_occupancy_counter_present(self, traced):
        _, sink, _ = traced
        counters = {e[2] for e in sink.of_kind("counter")}
        assert "LDQ" in counters and "SDQ" in counters
        ldq = [e for e in sink.of_kind("counter") if e[2] == "LDQ"]
        assert all(e[4] >= 0 for e in ldq)
        assert max(e[4] for e in ldq) > 0

    def test_cmas_fork_instants(self, traced):
        result, sink, _ = traced
        forks = [e for e in sink.of_kind("instant") if e[2] == "cmas_fork"]
        assert len(forks) == result.cmas_threads_forked

    def test_memory_fill_events(self, traced):
        result, sink, _ = traced
        fills = [e for e in sink.of_kind("duration") if e[1] == "memory"]
        assert fills and all(e[4] > 1 for e in fills)  # dur > L1 latency

    def test_sampler_timeseries(self, traced):
        result, _, tel = traced
        samples = tel.samples
        assert len(samples) > 2
        cycles = [s.cycle for s in samples]
        assert cycles == sorted(cycles)
        assert all({"LDQ", "SDQ", "SAQ"} <= set(s.queues) for s in samples)
        assert {"CP", "AP", "CMP"} <= set(samples[0].cores)
        payload = tel.samplers[-1].as_payload()
        assert payload[0]["queues"].keys() == {"LDQ", "SDQ", "SAQ"}

    def test_sampler_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Sampler(0)


class TestSamplerEdgeCases:
    def test_interval_one_samples_every_visited_cycle(self, config):
        program = build_store_loop(16)
        trace, _ = generate_trace(program)
        tel = Telemetry(cpi=False, sample_interval=1)
        result = Machine(config, program.copy(), trace, mode="superscalar",
                         telemetry=tel).run()
        cycles = [s.cycle for s in tel.samples]
        assert cycles and cycles[0] == 0
        assert cycles == sorted(set(cycles))  # strictly increasing
        assert cycles[-1] < result.total_cycles

    def test_zero_cycle_run_records_nothing(self, config):
        """An empty trace finishes at cycle 0 without tripping the
        sampler (or dividing by zero in the CPI accounting)."""
        program = build_store_loop(16)
        tel = Telemetry(cpi=True, sample_interval=1)
        result = Machine(config, program.copy(), [], mode="superscalar",
                         telemetry=tel).run()
        assert result.cycles == 0
        assert result.committed == {"main": 0}
        assert tel.samples == []
        assert stack_total(result.cpi_stacks["main"]) == 0

    def test_take_sample_on_idle_machine(self, config):
        program = build_store_loop(16)
        tel = Telemetry(cpi=False, sample_interval=1)
        machine = Machine(config, program.copy(), [], mode="superscalar",
                          telemetry=tel)
        sample = take_sample(machine, 0)
        assert sample.cycle == 0
        assert sample.queues == {"LDQ": 0, "SDQ": 0, "SAQ": 0}
        assert sample.cores == {"main": (0, 0)}
        assert sample.as_dict()["outstanding_misses"] == 0


class TestArchQueueSink:
    def test_functional_queue_mirrors_occupancy(self):
        sink = MemorySink()
        q = ArchQueue("LDQ", 4)
        q.attach_sink(sink)
        q.push(1)
        q.push(2)
        q.pop()
        values = [e[4] for e in sink.of_kind("counter")]
        assert values == [1, 2, 1]

    def test_attach_null_sink_is_off(self):
        q = ArchQueue("LDQ", 4)
        q.attach_sink(NullSink())
        q.push(1)  # must not record or fail
        assert q._sink is None


def test_new_stack_and_total():
    stack = new_stack()
    assert set(stack) == set(CPI_COMPONENTS)
    assert stack_total(stack) == 0
    stack["base"] = 3
    with pytest.raises(AssertionError):
        check_stack(stack, 4)
