"""Cycle-exact parity of the event-driven scheduler.

The wakeup/select rewrite (PR 4) must be *cycle-for-cycle identical* to
the polling scheduler it replaced.  These tests sweep the full quick-scale
grid — 7 benchmarks x 4 machine models — and assert that cycle counts,
per-core CoreStats and CPI stacks all match the fixtures recorded from the
pre-rewrite scheduler (``tests/fixtures/sched_parity.json``, regenerated
only when a timing-model change is intentional — see
``tests/record_sched_fixtures.py``), and that the co-simulation oracle
(``--verify``) still passes under the new scheduler.
"""

from __future__ import annotations

import json

import pytest

from repro.config import MachineConfig
from repro.experiments.runner import prepare, run_model
from repro.telemetry import Telemetry, check_stack
from repro.workloads import quick_workloads

from tests.record_sched_fixtures import FIXTURE_PATH, MODES, SEED


@pytest.fixture(scope="module")
def fixture_grid() -> dict:
    payload = json.loads(FIXTURE_PATH.read_text())
    assert payload["seed"] == SEED
    assert tuple(payload["modes"]) == MODES
    return payload["grid"]


@pytest.fixture(scope="module")
def compiled(config):
    return {w.name: prepare(w, config) for w in quick_workloads(SEED)}


@pytest.fixture(scope="module")
def config() -> MachineConfig:
    return MachineConfig()


@pytest.mark.parametrize("mode", MODES)
def test_grid_parity(mode, fixture_grid, compiled, config):
    """Every quick benchmark reproduces the recorded cell bit-for-bit."""
    for name, cells in sorted(fixture_grid.items()):
        expected = cells[mode]
        result = run_model(compiled[name], config, mode,
                           telemetry=Telemetry(cpi=True))
        label = f"{name}/{mode}"
        assert result.cycles == expected["cycles"], label
        assert result.total_cycles == expected["total_cycles"], label
        assert dict(result.committed) == expected["committed"], label
        assert result.core_stats == expected["core_stats"], label
        assert result.cpi_stacks == expected["cpi_stacks"], label
        assert result.cmas_threads_forked == expected["cmas_threads_forked"], label
        assert result.cmas_threads_dropped == expected["cmas_threads_dropped"], label


@pytest.mark.parametrize("mode", MODES)
def test_cpi_stacks_sum_to_cycles(mode, fixture_grid):
    """The recorded stacks themselves satisfy the exact-sum invariant."""
    for name, cells in sorted(fixture_grid.items()):
        expected = cells[mode]
        for core, stack in expected["cpi_stacks"].items():
            check_stack(stack, expected["cycles"],
                        core=f"{name}/{mode}/{core}")


@pytest.mark.parametrize("mode", MODES)
def test_oracle_verifies_new_scheduler(mode, compiled, config):
    """The co-simulation oracle passes under the event-driven scheduler."""
    cw = compiled["field"]
    result = run_model(cw, config, mode, verify=True)
    assert result.verified
