"""Shared fixtures: configurations and small reference programs."""

from __future__ import annotations

import pytest

from repro.asm.builder import ProgramBuilder
from repro.config import MachineConfig


@pytest.fixture
def config() -> MachineConfig:
    """Table-1 default machine configuration."""
    return MachineConfig()


@pytest.fixture(autouse=True)
def _isolated_run_cache(tmp_path_factory, monkeypatch):
    """Point the persistent run cache at a per-test directory so tests
    never read or write ``~/.cache/hidisc``."""
    monkeypatch.setenv(
        "HIDISC_CACHE_DIR", str(tmp_path_factory.mktemp("hidisc-cache"))
    )


def build_counting_loop(iterations: int = 10) -> "Program":
    """sum = 0 + 1 + ... + (iterations-1), stored to `out`."""
    b = ProgramBuilder("counting")
    b.data_i64("out", [0])
    b.li("t0", 0)            # i
    b.li("t1", iterations)
    b.li("t2", 0)            # sum
    b.label("loop")
    b.add("t2", "t2", "t0")
    b.addi("t0", "t0", 1)
    b.blt("t0", "t1", "loop")
    b.la("a0", "out")
    b.sd("t2", 0, "a0")
    b.halt()
    return b.build()


def build_store_loop(iterations: int = 8) -> "Program":
    """arr[i] = i * 3 for each i — exercises stores + SDQ separation."""
    b = ProgramBuilder("stores")
    b.data_space("arr", iterations * 8)
    b.la("t0", "arr")
    b.li("t1", iterations)
    b.li("t2", 0)
    b.li("t3", 3)
    b.label("loop")
    b.mul("t4", "t2", "t3")
    b.sd("t4", 0, "t0")
    b.addi("t0", "t0", 8)
    b.addi("t2", "t2", 1)
    b.blt("t2", "t1", "loop")
    b.halt()
    return b.build()


def build_load_compute_store(n: int = 8) -> "Program":
    """out[i] = in[i] * in[i] + 1 — loads crossing to the CS and back."""
    b = ProgramBuilder("lcs")
    b.data_i64("in", list(range(1, n + 1)))
    b.data_space("outv", n * 8)
    b.la("t0", "in")
    b.la("t1", "outv")
    b.li("t2", n)
    b.li("t3", 0)
    b.label("loop")
    b.ld("t4", 0, "t0")
    b.mul("t5", "t4", "t4")
    b.addi("t5", "t5", 1)
    b.sd("t5", 0, "t1")
    b.addi("t0", "t0", 8)
    b.addi("t1", "t1", 8)
    b.addi("t3", "t3", 1)
    b.blt("t3", "t2", "loop")
    b.halt()
    return b.build()


def build_fp_kernel(n: int = 6) -> "Program":
    """out[i] = a[i] * b[i] + 0.5 — FP loads, CS FP pipeline, FP store."""
    b = ProgramBuilder("fpk")
    b.data_f64("a", [0.5 * i for i in range(n)])
    b.data_f64("bv", [1.5 * i + 1.0 for i in range(n)])
    b.data_f64("half", [0.5])
    b.data_space("outv", n * 8)
    b.la("t0", "a")
    b.la("t1", "bv")
    b.la("t2", "outv")
    b.la("t9", "half")
    b.fld("f10", 0, "t9")
    b.li("t3", n)
    b.li("t4", 0)
    b.label("loop")
    b.fld("f0", 0, "t0")
    b.fld("f1", 0, "t1")
    b.fmul("f2", "f0", "f1")
    b.fadd("f2", "f2", "f10")
    b.fsd("f2", 0, "t2")
    b.addi("t0", "t0", 8)
    b.addi("t1", "t1", 8)
    b.addi("t2", "t2", 8)
    b.addi("t4", "t4", 1)
    b.blt("t4", "t3", "loop")
    b.halt()
    return b.build()


@pytest.fixture
def counting_loop():
    return build_counting_loop()


@pytest.fixture
def store_loop():
    return build_store_loop()


@pytest.fixture
def load_compute_store():
    return build_load_compute_store()


@pytest.fixture
def fp_kernel():
    return build_fp_kernel()
