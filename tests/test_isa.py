"""Unit tests for the ISA layer: registers, opcodes, instruction metadata."""

import pytest

from repro.isa import (
    FP_BASE,
    Format,
    FuClass,
    Instruction,
    NUM_REGS,
    Op,
    Stream,
    ZERO,
    is_fp_reg,
    is_int_reg,
    parse_reg,
    reg_name,
)
from repro.isa.opcodes import COMM_OPS, MNEMONIC_TO_OP


class TestRegisters:
    def test_zero_is_int_reg(self):
        assert is_int_reg(ZERO)
        assert not is_fp_reg(ZERO)

    def test_fp_space(self):
        assert is_fp_reg(FP_BASE)
        assert is_fp_reg(NUM_REGS - 1)
        assert not is_int_reg(FP_BASE)

    def test_parse_aliases(self):
        assert parse_reg("zero") == 0
        assert parse_reg("$sp") == 29
        assert parse_reg("ra") == 31
        assert parse_reg("t0") == 8
        assert parse_reg("f3") == FP_BASE + 3
        assert parse_reg("r17") == 17

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_reg("x99")

    def test_names_roundtrip(self):
        for reg in range(NUM_REGS):
            assert parse_reg(reg_name(reg)) == reg

    def test_reg_name_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            reg_name(64)


class TestOpcodeMetadata:
    def test_every_mnemonic_unique(self):
        assert len(MNEMONIC_TO_OP) == len(list(Op))

    def test_loads_classified(self):
        for op in (Op.LD, Op.LW, Op.LBU, Op.FLD):
            assert op.info.is_load
            assert op.info.fu is FuClass.LSU
            assert op.info.mem_bytes > 0

    def test_stores_classified(self):
        for op in (Op.SD, Op.SW, Op.SB, Op.FSD):
            assert op.info.is_store
            assert not op.info.is_load

    def test_control_classified(self):
        for op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BEQZ, Op.BNEZ,
                   Op.J, Op.JAL, Op.JR, Op.HALT):
            assert op.info.is_control

    def test_comm_ops_flagged(self):
        assert Op.PUSH_LDQ.info.writes_ldq
        assert Op.POP_LDQF.info.reads_ldq
        assert Op.PUSH_SDQ.info.writes_sdq
        for op in COMM_OPS:
            info = op.info
            assert info.reads_ldq or info.writes_ldq or info.writes_sdq

    def test_latencies_positive(self):
        for op in Op:
            assert op.info.latency >= 1

    def test_fp_ops_marked(self):
        assert Op.FADD.info.is_fp
        assert Op.FLT.info.is_fp  # FP sources, int dest
        assert not Op.ADD.info.is_fp


class TestInstructionDeps:
    def test_alu_dest_and_sources(self):
        i = Instruction(op=Op.ADD, rd=3, rs1=4, rs2=5)
        assert i.dest_reg() == 3
        assert set(i.source_regs()) == {4, 5}

    def test_r0_dest_is_none(self):
        i = Instruction(op=Op.ADD, rd=0, rs1=4, rs2=5)
        assert i.dest_reg() is None

    def test_r0_sources_dropped(self):
        i = Instruction(op=Op.ADD, rd=3, rs1=0, rs2=5)
        assert i.source_regs() == (5,)

    def test_load_shape(self):
        i = Instruction(op=Op.LD, rd=6, rs1=7, imm=16)
        assert i.dest_reg() == 6
        assert i.source_regs() == (7,)
        assert i.is_load and i.is_mem and not i.is_store

    def test_store_shape(self):
        i = Instruction(op=Op.SD, rs1=7, rs2=8, imm=0)
        assert i.dest_reg() is None
        assert set(i.source_regs()) == {7, 8}

    def test_sdq_store_drops_data_source(self):
        i = Instruction(op=Op.SD, rs1=7, rs2=8)
        i.ann.sdq_data = True
        assert i.source_regs() == (7,)

    def test_jal_writes_ra(self):
        i = Instruction(op=Op.JAL, target=5)
        assert i.dest_reg() == parse_reg("ra")

    def test_branch_classification(self):
        assert Instruction(op=Op.BEQ, rs1=1, rs2=2).is_branch
        assert not Instruction(op=Op.J).is_branch
        assert Instruction(op=Op.J).is_control

    def test_pop_has_no_sources(self):
        i = Instruction(op=Op.POP_LDQ, rd=5)
        assert i.source_regs() == ()
        assert i.dest_reg() == 5
        assert i.is_comm


class TestValidate:
    def test_accepts_good_fp(self):
        Instruction(op=Op.FADD, rd=FP_BASE, rs1=FP_BASE + 1,
                    rs2=FP_BASE + 2).validate()

    def test_rejects_int_reg_in_fp_slot(self):
        with pytest.raises(ValueError):
            Instruction(op=Op.FADD, rd=1, rs1=FP_BASE, rs2=FP_BASE).validate()

    def test_fp_compare_writes_int(self):
        Instruction(op=Op.FLT, rd=3, rs1=FP_BASE, rs2=FP_BASE + 1).validate()
        with pytest.raises(ValueError):
            Instruction(op=Op.FLT, rd=FP_BASE, rs1=FP_BASE,
                        rs2=FP_BASE + 1).validate()

    def test_conversions(self):
        Instruction(op=Op.ITOF, rd=FP_BASE, rs1=2).validate()
        Instruction(op=Op.FTOI, rd=2, rs1=FP_BASE).validate()
        with pytest.raises(ValueError):
            Instruction(op=Op.ITOF, rd=2, rs1=2).validate()

    def test_fp_load_store(self):
        Instruction(op=Op.FLD, rd=FP_BASE, rs1=4).validate()
        Instruction(op=Op.FSD, rs1=4, rs2=FP_BASE).validate()
        with pytest.raises(ValueError):
            Instruction(op=Op.FLD, rd=4, rs1=4).validate()

    def test_copy_is_independent(self):
        i = Instruction(op=Op.LD, rd=6, rs1=7)
        j = i.copy()
        j.ann.stream = Stream.AS
        j.ann.to_ldq = True
        assert i.ann.stream is Stream.NONE
        assert not i.ann.to_ldq


class TestFormats:
    def test_format_assignment(self):
        assert Op.ADD.info.fmt is Format.R3
        assert Op.ADDI.info.fmt is Format.RI
        assert Op.LD.info.fmt is Format.LOAD
        assert Op.SD.info.fmt is Format.STORE
        assert Op.BEQ.info.fmt is Format.BRANCH
        assert Op.BEQZ.info.fmt is Format.BRANCH1
        assert Op.J.info.fmt is Format.JUMP
        assert Op.JR.info.fmt is Format.JREG
        assert Op.PUSH_LDQ.info.fmt is Format.PUSH
        assert Op.POP_LDQ.info.fmt is Format.POP
        assert Op.NOP.info.fmt is Format.NONE
