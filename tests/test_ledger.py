"""Run-ledger tests (repro.experiments.ledger) plus the ``hidisc runs``
CLI and the ``--orch-trace`` export path."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.config import MachineConfig
from repro.experiments.cli import main
from repro.experiments.ledger import (
    RunLedger,
    build_record,
    ledger_path,
    locked_append,
    new_run_id,
    render_regressions,
    render_run_report,
    render_runs_list,
)
from repro.telemetry import metrics, spans

_SRC = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture(autouse=True)
def _clean_observability():
    spans.disable()
    metrics.reset()
    yield
    spans.disable()
    metrics.reset()


def _record(run_id=None, command="suite", elapsed=2.0, outcome="ok",
            counters=None):
    reg = metrics.MetricsRegistry()
    for name, value in (counters or {}).items():
        reg.inc(name, value)
    return build_record(
        run_id=run_id or new_run_id(), command=command,
        argv=[command, "--quick"], outcome=outcome, exit_code=0,
        elapsed_seconds=elapsed, config=MachineConfig(),
        metrics_snapshot=reg.snapshot(),
    )


class TestRunLedger:
    def test_append_and_read_round_trip(self, tmp_path):
        ledger = RunLedger(ledger_path(tmp_path))
        record = _record(counters={"cells_completed": 28, "cache_hits": 7,
                                   "cache_misses": 1})
        assert ledger.append(record)
        entries = ledger.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["run_id"] == record["run_id"]
        assert entry["cells"] == 28
        assert entry["cells_per_second"] == 14.0
        assert entry["version"] and entry["config"]

    def test_corrupt_lines_are_skipped(self, tmp_path):
        ledger = RunLedger(ledger_path(tmp_path))
        ledger.append(_record())
        with ledger.path.open("a") as fh:
            fh.write("{torn json\n")
            fh.write('"not a dict"\n')
            fh.write('{"no_run_id": true}\n')
        ledger.append(_record())
        assert len(ledger.entries()) == 2

    def test_unwritable_path_degrades(self):
        ledger = RunLedger("/proc/definitely/not/writable/ledger.jsonl")
        assert ledger.append(_record()) is False
        assert ledger.entries() == []

    def test_find_by_prefix_prefers_newest(self, tmp_path):
        ledger = RunLedger(ledger_path(tmp_path))
        first = _record(run_id="aaa111-1")
        second = _record(run_id="aaa222-1")
        ledger.append(first)
        ledger.append(second)
        assert ledger.find("aaa222")["run_id"] == "aaa222-1"
        assert ledger.find("aaa")["run_id"] == "aaa222-1"
        assert ledger.find("zzz") is None

    def test_baseline_is_previous_same_command(self, tmp_path):
        ledger = RunLedger(ledger_path(tmp_path))
        old_suite = _record(run_id="r1", command="suite")
        other_cmd = _record(run_id="r2", command="stats")
        new_suite = _record(run_id="r3", command="suite")
        for record in (old_suite, other_cmd, new_suite):
            ledger.append(record)
        assert ledger.baseline_for(new_suite)["run_id"] == "r1"
        assert ledger.baseline_for(old_suite) is None

    def test_entries_limit_keeps_newest(self, tmp_path):
        ledger = RunLedger(ledger_path(tmp_path))
        for i in range(5):
            ledger.append(_record(run_id=f"r{i}"))
        assert [e["run_id"] for e in ledger.entries(limit=2)] == \
            ["r3", "r4"]


class TestLockedAppend:
    def test_appends_newline_terminated_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert locked_append(path, "one")
        assert locked_append(path, "two\n")  # trailing newline normalized
        assert path.read_text() == "one\ntwo\n"

    def test_unwritable_path_is_a_noop(self):
        assert locked_append(
            "/proc/definitely/not/writable/x.jsonl", "line") is False

    def test_concurrent_multiprocess_appends_stay_untorn(self, tmp_path):
        """N processes x M appends under flock: every line must land
        intact and exactly once — the guarantee service workers and
        parallel CLI invocations rely on when they share one ledger."""
        path = tmp_path / "ledger.jsonl"
        writers, per_writer = 4, 50
        script = (
            "import json, sys\n"
            "from repro.experiments.ledger import locked_append\n"
            "path, tag = sys.argv[1], sys.argv[2]\n"
            "for i in range(int(sys.argv[3])):\n"
            "    line = json.dumps({'tag': tag, 'i': i, 'pad': 'x' * 256})\n"
            "    assert locked_append(path, line)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path), f"p{n}",
                 str(per_writer)], env=env)
            for n in range(writers)
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        lines = path.read_text().splitlines()
        assert len(lines) == writers * per_writer
        counts: dict[str, set[int]] = {}
        for line in lines:
            event = json.loads(line)  # no torn/interleaved writes
            assert event["pad"] == "x" * 256
            counts.setdefault(event["tag"], set()).add(event["i"])
        assert counts == {f"p{n}": set(range(per_writer))
                          for n in range(writers)}


class TestRenders:
    def test_list_render(self):
        text = render_runs_list([_record(counters={"cache_hits": 3,
                                                   "cache_misses": 1})])
        assert "run id" in text and "suite" in text and "75%" in text
        assert "ledger is empty" in render_runs_list([])

    def test_report_render(self):
        record = _record(counters={"cells_completed": 4})
        record["spans"] = {"count": 2,
                           "by_category": {"pool": {"count": 2, "ms": 1.5}},
                           "slowest": [{"name": "run_tasks", "cat": "pool",
                                        "ms": 1.5}]}
        text = render_run_report(record)
        assert "cells_completed" in text and "pool" in text
        assert "slowest spans" in text and "run_tasks" in text

    def test_regression_render_flags_slowdown(self):
        baseline = _record(run_id="base", elapsed=2.0,
                           counters={"cache_hits": 4})
        slow = _record(run_id="slow", elapsed=4.0,
                       counters={"cache_misses": 4, "pool_retries": 2})
        text = render_regressions(slow, baseline)
        assert "REGRESSIONS" in text
        assert "over baseline" in text and "pool_retries increased" in text

    def test_regression_render_clean(self):
        baseline = _record(run_id="base", elapsed=2.0)
        same = _record(run_id="same", elapsed=2.1)
        assert "no regressions" in render_regressions(same, baseline)


class TestRunsCli:
    @staticmethod
    def _stats_argv(cache_dir, extra=()):
        return ["stats", "--quick", "--no-progress", "--bench", "field",
                "--model", "superscalar", "--cache-dir", str(cache_dir),
                *extra]

    def test_every_run_appends_one_entry(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(self._stats_argv(cache_dir)) == 0
        assert main(self._stats_argv(cache_dir)) == 0
        capsys.readouterr()
        entries = RunLedger(ledger_path(cache_dir)).entries()
        assert len(entries) == 2
        assert all(e["command"] == "stats" for e in entries)
        # second run compiled through the warm cache
        assert entries[1]["metrics"]["counters"]["cache_hits"] == 1

    def test_runs_list_show_report(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(self._stats_argv(cache_dir)) == 0
        assert main(self._stats_argv(cache_dir)) == 0
        capsys.readouterr()

        assert main(["runs", "list", "--cache-dir", str(cache_dir)]) == 0
        listing = capsys.readouterr().out
        assert "stats" in listing and "run id" in listing

        assert main(["runs", "show", "--cache-dir", str(cache_dir)]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["command"] == "stats" and shown["exit_code"] == 0

        assert main(["runs", "report", "--cache-dir", str(cache_dir)]) == 0
        report = capsys.readouterr().out
        assert "hidisc stats" in report
        assert "vs run" in report, "second run must compare to the first"

        # a run-id prefix selects a specific entry
        run_id = shown["run_id"][:8]
        assert main(["runs", "show", run_id,
                     "--cache-dir", str(cache_dir)]) == 0
        assert json.loads(capsys.readouterr().out)["run_id"] == \
            shown["run_id"]

    def test_runs_on_empty_ledger(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["runs", "list", "--cache-dir", str(cache_dir)]) == 0
        assert "ledger is empty" in capsys.readouterr().out
        assert main(["runs", "report", "--cache-dir", str(cache_dir)]) == 2
        assert "empty" in capsys.readouterr().err

    def test_unknown_run_id(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(self._stats_argv(cache_dir)) == 0
        capsys.readouterr()
        assert main(["runs", "show", "zzzz",
                     "--cache-dir", str(cache_dir)]) == 2
        assert "no ledger entry" in capsys.readouterr().err

    def test_runs_action_validated(self):
        with pytest.raises(SystemExit):
            main(["runs", "frobnicate"])
        with pytest.raises(SystemExit):
            main(["runs", "list", "someid"])

    def test_no_cache_skips_ledger(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(self._stats_argv(cache_dir, ["--no-cache"])) == 0
        capsys.readouterr()
        assert RunLedger(ledger_path(cache_dir)).entries() == []

    def test_orch_trace_export(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        trace_path = tmp_path / "orch.json"
        assert main(self._stats_argv(
            cache_dir, ["--orch-trace", str(trace_path)])) == 0
        capsys.readouterr()
        assert not spans.active(), "tracer must be disabled after the run"

        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"prepare", "run_model", "cache_store"} <= names
        lines = trace_path.read_text().splitlines()
        assert lines[0] == '{"traceEvents": ['
        for line in lines[1:-1]:
            json.loads(line.rstrip(","))

        # the traced run's ledger entry carries the span summary
        entry = RunLedger(ledger_path(cache_dir)).entries()[-1]
        assert entry["spans"]["count"] == len(doc["traceEvents"]) - \
            sum(1 for e in doc["traceEvents"] if e["ph"] == "M")
