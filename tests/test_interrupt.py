"""Graceful SIGINT/SIGTERM handling (repro.experiments.interrupt).

Unit tests drive :class:`GracefulInterrupt` with real signals delivered
to this process; the integration tests check the two consumers: a
``run_suite`` loop that stops at a cell boundary and resumes without
recomputation, and the CLI contract — SIGINT → exit 130 + a ledger
record with ``outcome: "interrupted"`` → ``--resume`` finishes the run.
"""

from __future__ import annotations

import io
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.config import MachineConfig
from repro.errors import InterruptedRun
from repro.experiments import GracefulInterrupt, RunCache, RunLedger, run_suite
from repro.experiments import interrupt as interrupt_mod
from repro.experiments.ledger import ledger_path
from repro.telemetry import diff_payloads
from repro.workloads import get_workload

SRC = str(Path(repro.__file__).resolve().parents[1])


def wait_until(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class TestGracefulInterrupt:
    def test_first_signal_defers_to_poll(self):
        stream = io.StringIO()
        with GracefulInterrupt(stream=stream) as gi:
            assert gi.triggered is None
            gi.poll()  # nothing seen yet: no-op
            interrupt_mod.poll()
            os.kill(os.getpid(), signal.SIGINT)
            wait_until(lambda: gi.triggered is not None, 5.0,
                       "the handler to see SIGINT")
            assert gi.triggered == "SIGINT"
            with pytest.raises(InterruptedRun, match="SIGINT"):
                gi.poll()
            # Library loops use the module-level poll unconditionally.
            with pytest.raises(InterruptedRun):
                interrupt_mod.poll()
        assert "finishing the in-flight cell" in stream.getvalue()

    def test_sigterm_is_also_graceful(self):
        with GracefulInterrupt(stream=io.StringIO()) as gi:
            os.kill(os.getpid(), signal.SIGTERM)
            wait_until(lambda: gi.triggered is not None, 5.0,
                       "the handler to see SIGTERM")
            assert gi.triggered == "SIGTERM"
            with pytest.raises(InterruptedRun, match="SIGTERM"):
                interrupt_mod.poll()

    def test_second_signal_aborts_hard(self):
        with GracefulInterrupt(stream=io.StringIO()) as gi:
            os.kill(os.getpid(), signal.SIGINT)
            wait_until(lambda: gi.triggered is not None, 5.0, "first SIGINT")
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
                time.sleep(5)

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulInterrupt(stream=io.StringIO()):
            assert signal.getsignal(signal.SIGINT) != before
        assert signal.getsignal(signal.SIGINT) == before
        assert interrupt_mod.current() is None
        interrupt_mod.poll()  # no active context: no-op

    def test_disabled_context_is_inert(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulInterrupt(enabled=False) as gi:
            assert signal.getsignal(signal.SIGINT) == before
            assert interrupt_mod.current() is None
            gi.poll()

    def test_non_main_thread_is_inert(self):
        """Worker threads (parallel pools, HTTP handlers) must be able to
        enter the context without touching process signal disposition."""
        observed = {}

        def enter():
            with GracefulInterrupt(stream=io.StringIO()) as gi:
                observed["installed"] = gi._installed
                gi.poll()
                interrupt_mod.poll()

        thread = threading.Thread(target=enter)
        thread.start()
        thread.join()
        assert observed["installed"] is False


class TestSuiteInterrupt:
    def test_run_suite_stops_at_cell_boundary_and_resumes(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        seen = []
        with GracefulInterrupt(stream=io.StringIO()) as gi:
            def interrupt_after_first_cell(benchmark, mode, resumed):
                seen.append((benchmark, mode, resumed))
                gi.triggered = "SIGTERM"  # as if the signal landed mid-cell

            with pytest.raises(InterruptedRun):
                run_suite(MachineConfig(), quick=True, seed=2003,
                          modes=("superscalar", "hidisc"),
                          workloads=[get_workload("pointer", quick=True,
                                                  seed=2003)],
                          cache=cache, resume=True,
                          on_cell=interrupt_after_first_cell)
        assert seen == [("pointer", "superscalar", False)], \
            "exactly the in-flight cell finishes before the stop"

        suite = run_suite(MachineConfig(), quick=True, seed=2003,
                          modes=("superscalar", "hidisc"),
                          workloads=[get_workload("pointer", quick=True,
                                                  seed=2003)],
                          cache=cache, resume=True,
                          on_cell=lambda *cell: seen.append(cell))
        assert seen[1] == ("pointer", "superscalar", True), \
            "the interrupted run's finished cell must resume from checkpoint"
        assert seen[2] == ("pointer", "hidisc", False)

        reference = run_suite(MachineConfig(), quick=True, seed=2003,
                              modes=("superscalar", "hidisc"),
                              workloads=[get_workload("pointer", quick=True,
                                                      seed=2003)],
                              cache=RunCache(tmp_path / "fresh"))
        report = diff_payloads(suite.to_payload(), reference.to_payload())
        assert report["identical"], report


@pytest.mark.slow
class TestCliInterrupt:
    def test_sigint_exits_130_records_interrupted_and_resumes(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        ledger = RunLedger(ledger_path(os.environ["HIDISC_CACHE_DIR"]))

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.cli", "suite",
             "--quick"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            text=True)
        lines: list[str] = []

        def tail():
            for line in proc.stderr:
                lines.append(line)

        reader = threading.Thread(target=tail, daemon=True)
        reader.start()
        try:
            # One full workload (all its cells checkpointed) prints a
            # "baseline ... cycles" summary — interrupt after that so the
            # resume provably has cells to pick up.
            wait_until(lambda: any("baseline" in l for l in lines), 120.0,
                       "the first finished workload")
            proc.send_signal(signal.SIGINT)
            code = proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert code == 130, "".join(lines)
        assert any("finishing the in-flight cell" in l for l in lines)

        interrupted = ledger.entries()[-1]
        assert interrupted["command"] == "suite"
        assert interrupted["outcome"] == "interrupted"
        assert interrupted["exit_code"] == 130
        assert interrupted["cells"] >= 4, \
            "the finished workload's cells must be on record"

        done = subprocess.run(
            [sys.executable, "-m", "repro.experiments.cli", "suite",
             "--quick", "--resume", "--no-progress"],
            env=env, capture_output=True, text=True, timeout=600)
        assert done.returncode == 0, done.stderr
        final = ledger.entries()[-1]
        assert final["outcome"] == "ok"
        resumed = final["metrics"]["counters"].get("cells_resumed", 0)
        assert resumed >= 4, \
            "the resumed run must reuse the interrupted run's checkpoints"
