"""Tests for the differential fuzzing subsystem (repro.fuzz)."""

from __future__ import annotations

import json

import pytest

from repro.config import MachineConfig
from repro.fuzz import (
    FAULTS,
    FuzzProgram,
    check_program,
    generate_program,
    injected_fault,
    load_repro,
    replay_repro,
    run_fuzz_campaign,
    save_repro,
    shrink_program,
)
from repro.fuzz.generator import (
    ARRAY_LEN,
    CLEAN_REGS,
    TAINT_REGS,
    generate_program as _gen,
)
from repro.isa import Op
from repro.isa.registers import parse_reg
from repro.sim.functional import FunctionalSimulator
from repro.slicer import compile_hidisc
from repro.workloads import check_ap_executable

SEEDS = list(range(5000, 5012))


class TestGenerator:
    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_programs_terminate_with_defined_semantics(self, seed):
        program = generate_program(seed).to_program()
        state = FunctionalSimulator(program).run(max_steps=1_000_000)
        assert state.halted

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_programs_stay_ap_executable(self, seed):
        """The taint partition must keep FP out of every backward slice
        that feeds control flow or addresses."""
        program = generate_program(seed).to_program()
        comp = compile_hidisc(program, MachineConfig())
        check_ap_executable(comp.decoupled)

    def test_deterministic_generation(self):
        a, b = generate_program(42), generate_program(42)
        assert a.to_json() == b.to_json()
        assert [str(i) for i in a.to_program().text] == \
               [str(i) for i in b.to_program().text]

    def test_seed_changes_program(self):
        assert generate_program(1).to_json() != generate_program(2).to_json()

    def test_json_roundtrip(self):
        fp = generate_program(7)
        again = FuzzProgram.from_json(fp.to_json())
        assert again.to_json() == fp.to_json()
        assert [str(i) for i in again.to_program().text] == \
               [str(i) for i in fp.to_program().text]

    def test_branch_and_index_registers_stay_clean(self):
        """Static IR audit: no branch operand or memory index may come
        from the FP-taintable pool."""
        taintable = set(TAINT_REGS)

        def audit(stmts):
            for s in stmts:
                if s["kind"] == "diamond":
                    assert s["rs1"] not in taintable
                    assert s["rs2"] not in taintable
                    audit(s["then"])
                    audit(s["else"])
                elif s["kind"] == "loop":
                    audit(s["body"])
                elif s["kind"] in ("load", "store"):
                    assert s["rs_idx"] not in taintable
                elif s["kind"] in ("fcmp", "ftoi"):
                    assert s["rd"] in taintable
                elif s["kind"] in ("alu_rr", "alu_ri", "div"):
                    # clean destinations never read taintable sources
                    if s["rd"] in set(CLEAN_REGS):
                        for key in ("rs1", "rs2"):
                            assert s.get(key) not in taintable

        for seed in SEEDS:
            audit(generate_program(seed).statements)

    def test_memory_accesses_stay_in_arrays(self):
        """Dynamic check: every data access of a generated program lands
        inside its declared data segment (the index mask at work)."""
        fp = generate_program(SEEDS[0], size=40)
        program = fp.to_program()
        trace = []
        FunctionalSimulator(program).run(trace=trace)
        lo = min(program.data_symbols.values())
        hi = lo + len(bytes(program.data)) + ARRAY_LEN * 8
        for dyn in trace:
            if dyn.addr >= 0:
                assert lo <= dyn.addr < hi


class TestHarness:
    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_clean_toolchain_reports_no_divergence(self, seed):
        assert check_program(generate_program(seed)) is None

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_injected_faults_are_detected(self, fault):
        """Every registered fault must be caught by stage 1 on at least
        one of a handful of seeds (the CI detection self-test)."""
        op = FAULTS[fault][0]
        with injected_fault(fault):
            for seed in range(6000, 6040):
                fp = generate_program(seed)
                program = fp.to_program()
                uses_op = any(i.op is op for i in program.text)
                if not uses_op:
                    continue
                found = check_program(fp)
                if found is not None:
                    assert found.kind in ("fast_vs_legacy", "separation",
                                          "cosim")
                    return
        pytest.fail(f"fault {fault!r} never produced a divergence")

    def test_fault_restores_dispatch_entry(self):
        from repro.sim import functional

        before = functional._ALU_RR[Op.XOR]
        with injected_fault("xor-as-or"):
            assert functional._ALU_RR[Op.XOR] is not before
        assert functional._ALU_RR[Op.XOR] is before

    def test_unknown_fault_rejected(self):
        with pytest.raises(KeyError):
            with injected_fault("no-such-fault"):
                pass  # pragma: no cover

    def test_divergence_carries_bisection(self):
        """A pure value fault must still be located to a first divergent
        commit via the max_steps bisection."""
        with injected_fault("xor-as-or"):
            for seed in range(6000, 6060):
                fp = generate_program(seed)
                found = check_program(fp)
                if found is not None and "registers differ" in found.detail:
                    assert found.first_divergent is not None
                    assert found.first_divergent["a"]["gid"] == \
                           found.first_divergent["b"]["gid"]
                    return
        pytest.fail("no value-divergence found to bisect")


def _find_failing(fault: str, seeds) -> FuzzProgram:
    for seed in seeds:
        fp = generate_program(seed)
        if check_program(fp) is not None:
            return fp
    raise AssertionError("no failing seed in range")  # pragma: no cover


class TestShrink:
    def test_shrinks_to_small_repro_with_same_kind(self):
        with injected_fault("add-off-by-one"):
            fp = _find_failing("add-off-by-one", range(7000, 7020))
            original = fp.statement_count()
            baseline = check_program(fp)
            small = shrink_program(fp, target_kind=baseline.kind)
            assert small.statement_count() < original
            after = check_program(small)
            assert after is not None and after.kind == baseline.kind

    def test_shrink_rejects_clean_program(self):
        with pytest.raises(ValueError):
            shrink_program(generate_program(SEEDS[0]))


class TestCorpusAndCampaign:
    def test_corpus_roundtrip_and_replay(self, tmp_path):
        with injected_fault("add-off-by-one"):
            fp = _find_failing("add-off-by-one", range(7000, 7020))
            found = check_program(fp)
            path = save_repro(tmp_path, fp, found,
                              original_statements=fp.statement_count())
            loaded, report = load_repro(path)
            assert loaded.to_json() == fp.to_json()
            assert report["kind"] == found.kind
            assert replay_repro(path) is not None     # fault still active
        assert replay_repro(path) is None             # healthy toolchain

    def test_clean_campaign_finds_nothing(self):
        report = run_fuzz_campaign(seed=5100, runs=6)
        assert report["divergences"] == []
        assert report["runs"] == 6

    def test_perturbed_campaign_finds_and_shrinks(self, tmp_path):
        report = run_fuzz_campaign(seed=5100, runs=6, shrink=True,
                                   corpus_dir=tmp_path,
                                   fault="add-off-by-one")
        assert report["divergences"], "fault must be detected"
        for entry in report["divergences"]:
            assert entry["statements"] <= entry["statements_original"]
        assert report["corpus"]
        saved = json.loads((tmp_path / report["corpus"][0].split("/")[-1]
                            ).read_text())
        assert saved["divergence"]["kind"]


class TestCli:
    def test_fuzz_command_clean(self, capsys):
        from repro.experiments.cli import main

        code = main(["fuzz", "--seed", "5200", "--runs", "4",
                     "--no-progress", "--no-cache"])
        assert code == 0
        assert "0 divergence(s)" in capsys.readouterr().out

    def test_fuzz_command_detects_injected_fault(self, tmp_path, capsys):
        from repro.experiments.cli import main

        corpus = tmp_path / "corpus"
        code = main(["fuzz", "--seed", "5200", "--runs", "4", "--shrink",
                     "--corpus", str(corpus), "--inject-fault",
                     "add-off-by-one", "--no-progress", "--no-cache"])
        assert code == 0  # self-test passes BECAUSE divergences were found
        assert "detection self-test PASSED" in capsys.readouterr().out
        assert list(corpus.glob("repro_*.json"))

    def test_fuzz_command_rejects_unknown_fault(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["fuzz", "--runs", "1", "--inject-fault", "bogus",
                  "--no-cache", "--no-progress"])
