"""Record the scheduler-parity fixtures for tests/test_sched_parity.py.

Runs the quick-scale suite (7 benchmarks x 4 machine models) with CPI
telemetry on and writes every cycle count, per-core CoreStats and CPI
stack to ``tests/fixtures/sched_parity.json``.  The fixtures pin the
*cycle-exact* behaviour of the timing model: any scheduler rewrite (such
as the event-driven wakeup core) must reproduce them bit-for-bit.

Regenerate (only when an intentional timing-model change lands)::

    PYTHONPATH=src python -m tests.record_sched_fixtures
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config import MachineConfig
from repro.experiments.runner import prepare, run_model
from repro.telemetry import Telemetry
from repro.workloads import quick_workloads

MODES = ("superscalar", "cp_ap", "cp_cmp", "hidisc")
FIXTURE_PATH = Path(__file__).parent / "fixtures" / "sched_parity.json"
SEED = 2003


def record() -> dict:
    """Simulate the full quick grid; returns the fixture payload."""
    config = MachineConfig()
    grid: dict[str, dict] = {}
    for workload in quick_workloads(SEED):
        compiled = prepare(workload, config)
        cells: dict[str, dict] = {}
        for mode in MODES:
            result = run_model(compiled, config, mode,
                               telemetry=Telemetry(cpi=True))
            cells[mode] = {
                "cycles": result.cycles,
                "total_cycles": result.total_cycles,
                "committed": dict(result.committed),
                "core_stats": result.core_stats,
                "cpi_stacks": result.cpi_stacks,
                "cmas_threads_forked": result.cmas_threads_forked,
                "cmas_threads_dropped": result.cmas_threads_dropped,
            }
        grid[workload.name] = cells
    return {"seed": SEED, "modes": list(MODES), "grid": grid}


def main() -> None:
    payload = record()
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True))
    cells = sum(len(cells) for cells in payload["grid"].values())
    print(f"recorded {cells} grid cells to {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
