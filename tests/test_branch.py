"""Tests for the branch predictors and BTB."""

import pytest

from repro.config import BranchConfig
from repro.errors import ConfigError
from repro.sim.branch import BranchPredictor, BranchTargetBuffer


def bimodal(**kw):
    return BranchPredictor(BranchConfig(kind="bimodal", **kw))


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(16)
        assert btb.lookup(5) is None
        btb.update(5, 100)
        assert btb.lookup(5) == 100

    def test_aliasing_overwrites(self):
        btb = BranchTargetBuffer(16)
        btb.update(5, 100)
        btb.update(5 + 16, 200)
        assert btb.lookup(5) is None
        assert btb.lookup(5 + 16) == 200


class TestBimodal:
    def test_learns_taken_loop(self):
        p = bimodal()
        # First resolution: direction predicted taken (init weakly-taken)
        # but BTB cold -> mispredict; afterwards it locks on.
        assert p.resolve(10, True, 3, "cond") is True
        for _ in range(20):
            assert p.resolve(10, True, 3, "cond") is False
        assert p.stats.mispredicts == 1

    def test_learns_not_taken(self):
        p = bimodal()
        results = [p.resolve(10, False, 3, "cond") for _ in range(6)]
        # Weakly-taken start: the first resolution mispredicts, after which
        # the 2-bit counter sits at "weakly not-taken" and stays correct.
        assert results[0]
        assert not any(results[1:])

    def test_loop_exit_mispredicts_once_per_loop(self):
        p = bimodal()
        mispredicts = 0
        for _ in range(5):          # 5 loop executions
            for i in range(9):      # 9 taken back-edges
                mispredicts += p.resolve(7, True, 2, "cond")
            mispredicts += p.resolve(7, False, 2, "cond")  # exit
        assert p.stats.mispredicts == mispredicts
        # After warmup: one mispredict per exit, none on back edges.
        assert 5 <= mispredicts <= 7

    def test_target_change_detected(self):
        p = bimodal()
        p.resolve(10, True, 3, "cond")
        p.resolve(10, True, 3, "cond")
        assert p.resolve(10, True, 99, "cond") is True  # new target

    def test_accuracy_property(self):
        p = bimodal()
        for i in range(100):
            p.resolve(i % 4, True, 1, "cond")
        assert 0.9 <= p.stats.accuracy <= 1.0


class TestKinds:
    def test_direct_never_mispredicts(self):
        p = bimodal()
        for _ in range(3):
            assert p.resolve(10, True, 55, "direct") is False
        assert p.stats.lookups == 0

    def test_indirect_uses_btb(self):
        p = bimodal()
        assert p.resolve(10, True, 55, "indirect") is True   # cold BTB
        assert p.resolve(10, True, 55, "indirect") is False  # learned
        assert p.resolve(10, True, 77, "indirect") is True   # target moved

    def test_perfect_never_mispredicts(self):
        p = BranchPredictor(BranchConfig(kind="perfect"))
        for taken in (True, False, True):
            assert p.resolve(1, taken, 9, "cond") is False

    def test_static_taken(self):
        p = BranchPredictor(BranchConfig(kind="taken"))
        assert p.predict_direction(1) is True
        p2 = BranchPredictor(BranchConfig(kind="nottaken"))
        assert p2.predict_direction(1) is False

    def test_gshare_runs(self):
        p = BranchPredictor(BranchConfig(kind="gshare"))
        for i in range(50):
            p.resolve(3, i % 2 == 0, 7, "cond")
        assert p.stats.lookups == 50


class TestConfig:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            BranchConfig(kind="neural")

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            BranchConfig(table_size=1000)
