"""Tests for the set-associative cache, including an LRU model check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.sim.cache import Cache


def make_cache(sets=4, block=32, ways=2):
    return Cache(CacheConfig(sets=sets, block_bytes=block, ways=ways,
                             latency=1, name="test"))


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert not c.access(0x100).hit
        assert c.access(0x100).hit

    def test_same_block_offsets_hit(self):
        c = make_cache(block=32)
        c.access(0x100)
        assert c.access(0x11F).hit
        assert not c.access(0x120).hit

    def test_block_address(self):
        c = make_cache(block=32)
        assert c.block_address(0x11F) == 0x100

    def test_probe_does_not_fill(self):
        c = make_cache()
        assert not c.probe(0x100)
        assert not c.access(0x100).hit
        assert c.probe(0x100)

    def test_invalidate_all(self):
        c = make_cache()
        c.access(0x100)
        c.invalidate_all()
        assert not c.probe(0x100)
        assert c.occupancy() == 0


class TestLru:
    def test_eviction_order(self):
        c = make_cache(sets=1, block=32, ways=2)
        c.access(0x000)
        c.access(0x020)
        c.access(0x000)          # refresh 0x000 -> 0x020 is LRU
        c.access(0x040)          # evicts 0x020
        assert c.probe(0x000)
        assert not c.probe(0x020)
        assert c.probe(0x040)

    def test_way_capacity(self):
        c = make_cache(sets=1, ways=4, block=32)
        for i in range(4):
            c.access(i * 32)
        assert c.occupancy() == 4
        c.access(4 * 32)
        assert c.occupancy() == 4
        assert not c.probe(0)


class TestWriteback:
    def test_dirty_eviction_reports_writeback(self):
        c = make_cache(sets=1, ways=1, block=32)
        c.access(0x000, is_write=True)
        result = c.access(0x020)
        assert result.writeback_address == 0x000
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = make_cache(sets=1, ways=1, block=32)
        c.access(0x000)
        result = c.access(0x020)
        assert result.writeback_address is None

    def test_write_hit_sets_dirty(self):
        c = make_cache(sets=1, ways=1, block=32)
        c.access(0x000)                     # clean fill
        c.access(0x008, is_write=True)      # dirty the same line
        assert c.access(0x020).writeback_address == 0x000


class TestStats:
    def test_demand_vs_prefetch_separated(self):
        c = make_cache()
        c.access(0x100, is_prefetch=True)
        c.access(0x100)
        assert c.stats.prefetch_accesses == 1
        assert c.stats.prefetch_misses == 1
        assert c.stats.demand_accesses == 1
        assert c.stats.demand_misses == 0

    def test_useful_prefetch_counted(self):
        c = make_cache()
        c.access(0x100, is_prefetch=True)
        c.access(0x100)
        assert c.stats.useful_prefetch_hits == 1
        c.access(0x100)
        assert c.stats.useful_prefetch_hits == 1  # only first demand touch

    def test_miss_rate(self):
        c = make_cache()
        c.access(0x100)
        c.access(0x100)
        c.access(0x200)
        assert c.stats.demand_miss_rate == pytest.approx(2 / 3)

    def test_merge(self):
        from repro.sim.cache import CacheStats

        a = CacheStats(demand_accesses=2, demand_misses=1)
        b = CacheStats(demand_accesses=3, demand_misses=2, writebacks=1)
        a.merge(b)
        assert a.demand_accesses == 5 and a.demand_misses == 3
        assert a.writebacks == 1


@settings(max_examples=60)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
def test_lru_matches_reference_model(block_ids):
    """Property: the cache's hit/miss sequence matches a textbook LRU model."""
    sets, ways, block = 4, 2, 32
    c = make_cache(sets=sets, block=block, ways=ways)
    model: dict[int, list[int]] = {s: [] for s in range(sets)}
    for bid in block_ids:
        address = bid * block
        index = bid % sets
        tag = bid // sets
        lru = model[index]
        expect_hit = tag in lru
        if expect_hit:
            lru.remove(tag)
        elif len(lru) >= ways:
            lru.pop()
        lru.insert(0, tag)
        assert c.access(address).hit == expect_hit


@given(st.lists(st.integers(0, 255), max_size=150))
def test_occupancy_never_exceeds_capacity(block_ids):
    c = make_cache(sets=4, ways=2)
    for bid in block_ids:
        c.access(bid * 32)
        assert c.occupancy() <= 8
    assert c.resident_blocks() <= {bid * 32 for bid in block_ids}
