"""Tests for trace generation, queue plans and CMAS plans."""

import pytest

from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.sim import (
    build_cmas_plan,
    build_queue_plan,
    generate_decoupled_trace,
    generate_trace,
)
from repro.slicer import compile_hidisc

from .conftest import build_counting_loop, build_load_compute_store


class TestGenerateTrace:
    def test_length_matches_functional(self, counting_loop):
        trace, state = generate_trace(counting_loop)
        assert state.halted
        assert len(trace) == 36

    def test_records_addresses(self, load_compute_store):
        trace, _ = generate_trace(load_compute_store)
        mem_records = [d for d in trace
                       if load_compute_store.text[d.pc].is_mem]
        assert all(d.addr >= 0 for d in mem_records)
        non_mem = [d for d in trace
                   if not load_compute_store.text[d.pc].is_mem]
        assert all(d.addr == -1 for d in non_mem)

    def test_records_branch_outcomes(self, counting_loop):
        trace, _ = generate_trace(counting_loop)
        branch_pcs = [d for d in trace if counting_loop.text[d.pc].is_branch]
        taken = [d for d in branch_pcs if d.next_pc != d.pc + 1]
        assert len(branch_pcs) == 10 and len(taken) == 9


class TestQueuePlan:
    @pytest.fixture
    def compiled(self, config):
        program = build_load_compute_store()
        comp = compile_hidisc(program, config, probable_miss_pcs=set())
        dtrace, _ = generate_decoupled_trace(comp.decoupled)
        return comp, dtrace

    def test_balanced(self, compiled, config):
        comp, dtrace = compiled
        plan = build_queue_plan(comp.decoupled, dtrace)
        assert plan.balanced
        assert len(plan.ldq_push_pos) == len(plan.ldq_pop_pos)
        assert len(plan.sdq_push_pos) == len(plan.sdq_pop_pos) > 0

    def test_fifo_matching_order(self, compiled):
        comp, dtrace = compiled
        plan = build_queue_plan(comp.decoupled, dtrace)
        for pop_pos, matches in plan.ldq_match.items():
            for push_pos in matches:
                assert push_pos < pop_pos
        # the k-th pop matches the k-th push
        flat = [m for pos in plan.ldq_pop_pos for m in [plan.ldq_match[pos]]]
        seen = []
        for pos in plan.ldq_pop_pos:
            seen.extend(plan.ldq_match[pos][:1])
        assert plan.ldq_push_pos[: len(seen)] != [] or not seen

    def test_routes_cover_trace(self, compiled):
        comp, dtrace = compiled
        plan = build_queue_plan(comp.decoupled, dtrace)
        assert len(plan.route) == len(dtrace)
        assert set(plan.route) <= {0, 1}

    def test_unannotated_program_rejected(self, counting_loop):
        trace, _ = generate_trace(counting_loop)
        with pytest.raises(SimulationError):
            build_queue_plan(counting_loop, trace)


class TestCmasPlan:
    @pytest.fixture
    def compiled(self, config):
        program = build_load_compute_store(32)
        load_pc = next(pc for pc, i in enumerate(program.text) if i.is_load)
        comp = compile_hidisc(program, config,
                              probable_miss_pcs={load_pc})
        trace, _ = generate_trace(program)
        return comp, trace

    def test_threads_cover_each_instance_once(self, compiled):
        comp, trace = compiled
        plan = build_cmas_plan(comp.original, trace, trigger_distance=16)
        claimed: list[int] = []
        for thread in plan.threads:
            claimed.extend(thread.positions)
        assert claimed == sorted(set(claimed))  # no duplicates, ascending

    def test_trigger_precedes_miss(self, compiled):
        comp, trace = compiled
        plan = build_cmas_plan(comp.original, trace, trigger_distance=16)
        assert plan.threads
        for thread in plan.threads:
            assert thread.trigger_pos <= thread.miss_pos
            assert thread.miss_pos - thread.trigger_pos <= 16

    def test_by_trigger_index(self, compiled):
        comp, trace = compiled
        plan = build_cmas_plan(comp.original, trace, trigger_distance=16)
        for pos, indices in plan.by_trigger.items():
            for idx in indices:
                assert plan.threads[idx].trigger_pos == pos

    def test_positions_are_cmas_instances(self, compiled):
        comp, trace = compiled
        plan = build_cmas_plan(comp.original, trace, trigger_distance=16)
        for thread in plan.threads:
            for pos in thread.positions:
                assert comp.original.text[trace[pos].pc].ann.cmas

    def test_no_marks_no_threads(self, config, counting_loop):
        comp = compile_hidisc(counting_loop, config, probable_miss_pcs=set())
        trace, _ = generate_trace(counting_loop)
        plan = build_cmas_plan(comp.original, trace, trigger_distance=16)
        assert plan.threads == []
        assert plan.total_prefetch_instructions == 0

    def test_max_slice_cap(self, compiled):
        comp, trace = compiled
        plan = build_cmas_plan(comp.original, trace, trigger_distance=10**6,
                               max_slice=2)
        assert all(len(t.positions) <= 2 for t in plan.threads)
