"""Tests for the text assembler (lexer + parser) and the disassembler."""

import pytest

from repro.asm import assemble
from repro.asm.lexer import tokenize, tokenize_line
from repro.errors import AssemblyError
from repro.isa import Op
from repro.isa.disasm import disassemble, disassemble_instruction
from repro.sim.functional import FunctionalSimulator


class TestLexer:
    def test_blank_and_comments_skipped(self):
        assert tokenize_line("", 1) is None
        assert tokenize_line("  # comment", 1) is None
        assert tokenize_line("; also comment", 1) is None

    def test_label_and_tokens(self):
        line = tokenize_line("loop: addi t0, t0, 1 # inc", 3)
        assert line.label == "loop"
        assert line.tokens == ["addi", "t0", ",", "t0", ",", "1"]

    def test_hex_numbers(self):
        line = tokenize_line("li t0, 0xFF", 1)
        assert "0xFF" in line.tokens

    def test_negative_numbers(self):
        line = tokenize_line("addi t0, t0, -8", 1)
        assert "-8" in line.tokens

    def test_mem_operand_punctuation(self):
        line = tokenize_line("ld t0, 8(sp)", 1)
        assert line.tokens == ["ld", "t0", ",", "8", "(", "sp", ")"]

    def test_bad_characters_rejected(self):
        with pytest.raises(AssemblyError):
            tokenize_line("addi t0 @ t1", 1)

    def test_tokenize_keeps_line_numbers(self):
        lines = tokenize("nop\n\nnop\n")
        assert [line.number for line in lines] == [1, 3]


class TestParser:
    def test_full_program_executes(self):
        src = """
                .data
        arr:    .word64 5, 6, 7
        out:    .word64 0
                .text
        main:   la   t0, arr
                li   t1, 3
                li   t2, 0
                li   t3, 0
        loop:   ld   t4, 0(t0)
                add  t2, t2, t4
                addi t0, t0, 8
                addi t3, t3, 1
                blt  t3, t1, loop
                la   a0, out
                sd   t2, 0(a0)
                halt
        """
        p = assemble(src)
        state = FunctionalSimulator(p).run()
        assert state.memory.load(p.data_symbols["out"], 8) == 18

    def test_double_directive(self):
        src = """
                .data
        v:      .double 1.5, -2.25
                .text
                halt
        """
        p = assemble(src)
        import struct
        assert struct.unpack_from("<d", p.data, 8)[0] == -2.25

    def test_byte_and_space(self):
        src = """
                .data
        b:      .byte 1, 2, 255
        s:      .space 16
                .text
                halt
        """
        p = assemble(src)
        assert p.data[2] == 255
        assert p.data_symbols["s"] % 8 == 0

    def test_bare_label_in_data(self):
        src = """
                .data
        v:
                .word64 9
                .text
                halt
        """
        p = assemble(src)
        assert "v" in p.data_symbols

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate t0, t1\nhalt")

    def test_unknown_register(self):
        with pytest.raises(AssemblyError):
            assemble("addi q9, q9, 1\nhalt")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("nop nop\nhalt")

    def test_directive_outside_data(self):
        with pytest.raises(AssemblyError):
            assemble(".word64 5\nhalt")

    def test_numeric_branch_target(self):
        p = assemble("beq zero, zero, 1\nhalt")
        assert p.text[0].target == 1

    def test_fp_instructions(self):
        src = """
                .data
        x:      .double 3.0
        y:      .double 0.0
                .text
                la t0, x
                fld f0, 0(t0)
                fmul f1, f0, f0
                la t1, y
                fsd f1, 0(t1)
                halt
        """
        p = assemble(src)
        state = FunctionalSimulator(p).run()
        assert state.memory.load_f64(p.data_symbols["y"]) == 9.0


class TestDisassembler:
    def test_roundtrip_through_assembler(self):
        src = """
        main:   li t0, 10
                addi t1, t0, -2
                sltu t2, t1, t0
                ld t3, 0(sp)
                sd t3, 8(sp)
                beq t2, zero, 0
                jr ra
                halt
        """
        p = assemble(src)
        listing = disassemble(p.text, with_index=False)
        p2 = assemble(listing)
        assert [i.op for i in p2.text] == [i.op for i in p.text]
        assert [i.imm for i in p2.text] == [i.imm for i in p.text]

    def test_store_shows_sdq(self):
        from repro.isa import Instruction

        i = Instruction(op=Op.SD, rs1=4, rs2=5, imm=8)
        assert "$SDQ" not in disassemble_instruction(i)
        i.ann.sdq_data = True
        assert "$SDQ" in disassemble_instruction(i)

    def test_annotation_tags(self):
        from repro.isa import Instruction, Stream
        from repro.isa.disasm import annotation_tag

        i = Instruction(op=Op.LD, rd=3, rs1=4)
        assert annotation_tag(i) == ""
        i.ann.stream = Stream.AS
        i.ann.cmas = True
        tag = annotation_tag(i)
        assert "AS" in tag and "cmas" in tag
