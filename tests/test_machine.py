"""Machine-level edge cases: decoupled warmup, stall accounting, results."""

import pytest

from repro.config import MachineConfig
from repro.sim import (
    Machine,
    build_cmas_plan,
    build_queue_plan,
    generate_decoupled_trace,
    generate_trace,
)
from repro.sim.machine import RunResult
from repro.slicer import compile_hidisc

from .conftest import build_load_compute_store
from tests.test_cmas import build_chase


@pytest.fixture
def compiled(config):
    program = build_load_compute_store(48)
    comp = compile_hidisc(program, config, probable_miss_pcs=set())
    trace, _ = generate_trace(program)
    dtrace, _ = generate_decoupled_trace(comp.decoupled)
    qplan = build_queue_plan(comp.decoupled, dtrace)
    return comp, trace, dtrace, qplan


class TestDecoupledWarmup:
    def test_warmup_on_decoupled_machine(self, config, compiled):
        comp, trace, dtrace, qplan = compiled
        full = Machine(config, comp.decoupled, dtrace, mode="cp_ap",
                       queue_plan=qplan, work_instructions=len(trace)).run()
        half = Machine(config, comp.decoupled, dtrace, mode="cp_ap",
                       queue_plan=qplan, work_instructions=len(trace),
                       warmup_pos=len(dtrace) // 2).run()
        assert half.total_cycles == full.total_cycles
        assert 0 < half.cycles < full.cycles

    def test_zero_warmup_measures_everything(self, config, compiled):
        comp, trace, dtrace, qplan = compiled
        r = Machine(config, comp.decoupled, dtrace, mode="cp_ap",
                    queue_plan=qplan, warmup_pos=0).run()
        assert r.cycles == r.total_cycles


class TestStallAccounting:
    def test_lod_counters_on_sync_heavy_kernel(self, config, compiled):
        comp, trace, dtrace, qplan = compiled
        r = Machine(config, comp.decoupled, dtrace, mode="cp_ap",
                    queue_plan=qplan, work_instructions=len(trace)).run()
        # the kernel stores CS-produced data every iteration: some
        # rendezvous accounting must appear somewhere.
        assert r.loss_of_decoupling_cycles() >= 0
        assert "CP" in r.core_stats and "AP" in r.core_stats
        for stats in r.core_stats.values():
            assert stats["committed"] > 0


class TestRunResult:
    def test_speedup_and_ratio(self):
        a = RunResult(machine="superscalar", benchmark="x", cycles=1000,
                      work_instructions=2000)
        b = RunResult(machine="hidisc", benchmark="x", cycles=500,
                      work_instructions=2000)
        assert b.speedup_over(a) == 2.0
        assert a.ipc == 2.0 and b.ipc == 4.0

    def test_zero_cycle_guard(self):
        a = RunResult(machine="m", benchmark="x", cycles=0,
                      work_instructions=10)
        b = RunResult(machine="m", benchmark="x", cycles=10,
                      work_instructions=10)
        assert a.ipc == 0.0
        with pytest.raises(ValueError):
            a.speedup_over(b)

    def test_miss_ratio_zero_baseline(self):
        a = RunResult(machine="m", benchmark="x", cycles=1,
                      work_instructions=1)
        b = RunResult(machine="m", benchmark="x", cycles=1,
                      work_instructions=1)
        assert a.miss_rate_ratio(b) == 1.0

    def test_summary_contains_key_facts(self):
        r = RunResult(machine="hidisc", benchmark="pointer", cycles=123,
                      work_instructions=456)
        s = r.summary()
        assert "pointer" in s and "hidisc" in s and "123" in s


class TestCmpDrain:
    def test_run_completes_with_pending_prefetches(self, config):
        """The machine finishes when the main cores drain even if the CMP
        still holds unexecuted CMAS work."""
        program = build_chase(n=2048, hops=200)
        trace, _ = generate_trace(program)
        comp = compile_hidisc(program, config, trace=trace)
        plan = build_cmas_plan(comp.original, trace, trigger_distance=4)
        r = Machine(config, comp.original, trace, mode="cp_cmp",
                    cmas_plan=plan).run()
        assert r.cycles > 0
        assert r.cmas_threads_forked + r.cmas_threads_dropped \
            == len(plan.threads)

    def test_thread_drop_accounting(self, config):
        """With a trigger distance spanning the whole trace, every thread
        forks at position 0; the CMP queue overflows and drops are counted."""
        program = build_chase(n=4096, hops=2000)
        trace, _ = generate_trace(program)
        comp = compile_hidisc(program, config, trace=trace)
        plan = build_cmas_plan(comp.original, trace,
                               trigger_distance=10**9)
        r = Machine(config, comp.original, trace, mode="cp_cmp",
                    cmas_plan=plan).run()
        assert r.cmas_threads_dropped > 0


class TestLatencyMonotonicity:
    def test_cycles_monotone_in_memory_latency(self, config):
        program = build_chase(n=2048, hops=300)
        trace, _ = generate_trace(program)
        previous = 0
        for l2, mem in ((4, 40), (8, 80), (12, 120), (16, 160)):
            point = config.with_latency(l2, mem)
            cycles = Machine(point, program.copy(), trace,
                             mode="superscalar").run().cycles
            assert cycles >= previous
            previous = cycles


class TestModesAgreeOnWork:
    def test_all_modes_same_memory_traffic(self, config, compiled):
        comp, trace, dtrace, qplan = compiled
        base = Machine(config, comp.original, trace,
                       mode="superscalar").run()
        dec = Machine(config, comp.decoupled, dtrace, mode="cp_ap",
                      queue_plan=qplan, work_instructions=len(trace)).run()
        # same loads/stores reach the hierarchy in both machines
        assert base.memory.demand_loads == dec.memory.demand_loads
        assert base.memory.demand_stores == dec.memory.demand_stores
