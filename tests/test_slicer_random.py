"""Property test: stream separation is sound on *random* programs.

Hypothesis generates random loop kernels (ALU soup + masked loads/stores),
and for every one of them the decoupled program — executed on split CP/AP
register files communicating only through the queues — must leave memory
exactly as the sequential original does, with all queues drained.

This is the single most load-bearing test of the compiler: it exercises
stream separation, SDQ store conversion, $LDQ operand delivery,
pop-to-register fallbacks and the FIFO-conflict resolver all at once.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.builder import ProgramBuilder
from repro.config import MachineConfig
from repro.slicer import compile_hidisc, validate_decoupled_dynamic

# Register pool used by generated code (avoid sp/ra).
REGS = ["t0", "t1", "t2", "t3", "t4", "t5", "s0", "s1"]

_alu3 = st.sampled_from(["add", "sub", "mul", "and_", "or_", "xor", "slt"])
_alui = st.sampled_from(["addi", "xori", "slli", "srli", "slti"])

_op_strategy = st.one_of(
    st.tuples(st.just("alu3"), _alu3, st.sampled_from(REGS),
              st.sampled_from(REGS), st.sampled_from(REGS)),
    st.tuples(st.just("alui"), _alui, st.sampled_from(REGS),
              st.sampled_from(REGS), st.integers(0, 31)),
    st.tuples(st.just("load"), st.sampled_from(REGS), st.sampled_from(REGS)),
    st.tuples(st.just("store"), st.sampled_from(REGS), st.sampled_from(REGS)),
)


def _emit(b: ProgramBuilder, op) -> None:
    kind = op[0]
    if kind == "alu3":
        _, mnemonic, rd, rs1, rs2 = op
        getattr(b, mnemonic)(rd, rs1, rs2)
    elif kind == "alui":
        _, mnemonic, rd, rs1, imm = op
        getattr(b, mnemonic)(rd, rs1, imm)
    elif kind == "load":
        _, rd, raddr = op
        b.andi("t6", raddr, 63)       # index in [0, 64)
        b.slli("t6", "t6", 3)
        b.add("t6", "t6", "s7")       # s7 = arr base
        b.ld(rd, 0, "t6")
    else:  # store
        _, rdata, raddr = op
        b.andi("t6", raddr, 63)
        b.slli("t6", "t6", 3)
        b.add("t6", "t6", "s7")
        b.sd(rdata, 0, "t6")


@st.composite
def random_kernel(draw):
    """(prologue ops, loop body ops, iteration count, seeds)."""
    prologue = draw(st.lists(_op_strategy, max_size=5))
    body = draw(st.lists(_op_strategy, min_size=1, max_size=12))
    iters = draw(st.integers(1, 6))
    seeds = draw(st.lists(st.integers(-100, 100),
                          min_size=len(REGS), max_size=len(REGS)))
    return prologue, body, iters, seeds


def build_random_program(spec) -> "Program":
    prologue, body, iters, seeds = spec
    b = ProgramBuilder("random-kernel")
    b.data_i64("arr", list(range(64)))
    b.la("s7", "arr")
    for reg, value in zip(REGS, seeds):
        b.li(reg, value)
    for op in prologue:
        _emit(b, op)
    b.li("s6", 0)
    b.li("s5", iters)
    b.label("loop")
    for op in body:
        _emit(b, op)
    b.addi("s6", "s6", 1)
    b.blt("s6", "s5", "loop")
    b.halt()
    return b.build()


@settings(max_examples=40, deadline=None)
@given(spec=random_kernel())
def test_random_programs_separate_soundly(spec):
    program = build_random_program(spec)
    comp = compile_hidisc(program, MachineConfig(), probable_miss_pcs=set())
    # validate_decoupled_dynamic raises on any memory or queue divergence.
    report = validate_decoupled_dynamic(program, comp.decoupled)
    assert report.sequential_instructions > 0


@settings(max_examples=15, deadline=None)
@given(spec=random_kernel())
def test_random_programs_time_soundly(spec):
    """The timing machines must run the same random kernels to completion
    with consistent cycle accounting."""
    from repro.sim import (
        Machine,
        build_queue_plan,
        generate_decoupled_trace,
        generate_trace,
    )

    config = MachineConfig()
    program = build_random_program(spec)
    comp = compile_hidisc(program, config, probable_miss_pcs=set())
    trace, _ = generate_trace(program)
    base = Machine(config, comp.original, trace, mode="superscalar").run()
    assert 0 < base.cycles
    assert base.committed["main"] == len(trace)

    dtrace, _ = generate_decoupled_trace(comp.decoupled)
    qplan = build_queue_plan(comp.decoupled, dtrace)
    dec = Machine(config, comp.decoupled, dtrace, mode="cp_ap",
                  queue_plan=qplan, work_instructions=len(trace)).run()
    assert 0 < dec.cycles
    assert sum(dec.committed.values()) == len(dtrace)
