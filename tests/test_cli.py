"""CLI tests (argument handling plus one end-to-end table)."""

import json

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_commands_accepted(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "figure8", "figure9", "figure10", "all"):
            assert parser.parse_args([cmd]).command == cmd

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure11"])

    def test_flags(self):
        args = build_parser().parse_args(
            ["figure8", "--quick", "--seed", "9", "--json", "x.json"]
        )
        assert args.quick and args.seed == 9 and args.json == "x.json"


class TestExecution:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "bimodal" in out

    def test_figure10_quick_with_json(self, capsys, tmp_path, monkeypatch):
        # restrict the sweep via monkeypatching to keep this test fast
        import repro.experiments.cli as cli_mod

        original = cli_mod.figure10

        def tiny_figure10(config, quick, seed, progress, compiled=None):
            return original(config, quick=quick, seed=seed,
                            benchmarks=("field",),
                            latencies=((12, 120),), progress=progress,
                            compiled=compiled)

        monkeypatch.setattr(cli_mod, "figure10", tiny_figure10)
        json_path = tmp_path / "out.json"
        assert main(["figure10", "--quick", "--no-progress",
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        payload = json.loads(json_path.read_text())
        assert "figure10" in payload
        assert payload["figure10"]["ipc"]["field"]["hidisc"][0] > 0
