"""CLI tests (argument handling plus one end-to-end table)."""

import json

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_commands_accepted(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "figure8", "figure9", "figure10",
                    "all", "suite", "stats", "trace", "lifecycle", "diff",
                    "cache", "runs"):
            assert parser.parse_args([cmd]).command == cmd

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure11"])

    def test_flags(self):
        args = build_parser().parse_args(
            ["figure8", "--quick", "--seed", "9", "--json", "x.json"]
        )
        assert args.quick and args.seed == 9 and args.json == "x.json"

    def test_profiling_flags(self):
        args = build_parser().parse_args(
            ["trace", "--bench", "field", "--model", "cp_ap",
             "--out", "t.json", "--format", "jsonl",
             "--occupancy-interval", "64"]
        )
        assert args.bench == "field" and args.model == "cp_ap"
        assert args.out == "t.json" and args.trace_format == "jsonl"
        assert args.occupancy_interval == 64

    def test_sampling_flags(self):
        args = build_parser().parse_args(
            ["suite", "--sample", "--sample-interval", "40000",
             "--sample-detail", "2000", "--sample-warmup", "500",
             "--sample-error-budget", "0.05", "--sample-seed", "7"]
        )
        assert args.sample and args.sample_interval == 40000
        assert args.sample_detail == 2000 and args.sample_warmup == 500
        assert args.sample_error_budget == 0.05 and args.sample_seed == 7
        defaults = build_parser().parse_args(["suite"])
        assert not defaults.sample and defaults.sample_interval is None

    def test_sampling_plan_built_from_flags(self):
        from repro.experiments.cli import _sampling_plan

        args = build_parser().parse_args(
            ["suite", "--sample", "--sample-interval", "40000"])
        plan = _sampling_plan(args)
        assert plan.interval_length == 40000
        assert plan.detail_length == 2000  # SamplingPlan default preserved
        assert _sampling_plan(build_parser().parse_args(["suite"])) is None

    def test_sample_tuning_requires_sample(self):
        with pytest.raises(SystemExit):
            main(["suite", "--sample-interval", "40000"])

    def test_sample_conflicts_rejected(self):
        with pytest.raises(SystemExit):
            main(["suite", "--sample", "--verify"])
        with pytest.raises(SystemExit):
            main(["faults", "--sample"])
        with pytest.raises(SystemExit):
            main(["lifecycle", "--sample"])

    def test_invalid_sampling_plan_rejected(self):
        # detail longer than the interval violates SamplingPlan validation
        with pytest.raises(SystemExit):
            main(["suite", "--sample", "--sample-interval", "100",
                  "--sample-detail", "2000"])

    def test_bad_bench_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--bench", "nosuch"])

    def test_parallel_and_cache_flags(self):
        args = build_parser().parse_args(
            ["suite", "--quick", "--jobs", "4", "--no-cache",
             "--cache-dir", "/tmp/c"]
        )
        assert args.jobs == 4 and args.no_cache
        assert args.cache_dir == "/tmp/c"
        assert build_parser().parse_args(["suite"]).jobs == 1

    def test_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "--jobs", "-1"])

    def test_cache_subcommands(self):
        for action in ("stats", "clear"):
            args = build_parser().parse_args(["cache", action])
            assert args.command == "cache" and args.cache_action == action
        assert build_parser().parse_args(["cache"]).cache_action is None

    def test_cache_action_only_valid_after_cache(self):
        with pytest.raises(SystemExit):
            main(["table1", "clear"])

    def test_lifecycle_flags(self):
        args = build_parser().parse_args(
            ["lifecycle", "--bench", "field", "--model", "hidisc",
             "--format", "kanata", "--out", "run.kanata",
             "--heartbeat", "5000", "--lifecycle-limit", "256",
             "--top", "5"]
        )
        assert args.command == "lifecycle" and args.trace_format == "kanata"
        assert args.out == "run.kanata" and args.heartbeat == 5000
        assert args.lifecycle_limit == 256 and args.top == 5
        # defaults: format resolved later (kanata), heartbeat/limit off
        args = build_parser().parse_args(["lifecycle"])
        assert args.trace_format is None and args.heartbeat == 0
        assert args.lifecycle_limit == 0 and args.top == 12

    def test_negative_heartbeat_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lifecycle", "--heartbeat", "-1"])

    def test_kanata_format_only_for_lifecycle(self):
        with pytest.raises(SystemExit):
            main(["trace", "--format", "kanata"])

    def test_diff_positional_paths(self):
        args = build_parser().parse_args(["diff", "a.json", "b.json"])
        assert args.cache_action == "a.json" and args.diff_b == "b.json"

    def test_diff_requires_both_paths(self):
        for argv in (["diff"], ["diff", "a.json"]):
            with pytest.raises(SystemExit):
                main(argv)

    def test_runs_subcommands(self):
        for action in ("list", "show", "report"):
            args = build_parser().parse_args(["runs", action])
            assert args.command == "runs" and args.cache_action == action
        # show/report take an optional run-id prefix (the diff_b slot)
        args = build_parser().parse_args(["runs", "show", "18c2f"])
        assert args.cache_action == "show" and args.diff_b == "18c2f"
        assert build_parser().parse_args(["runs"]).cache_action is None

    def test_runs_action_validated_in_main(self):
        with pytest.raises(SystemExit):
            main(["runs", "frobnicate"])
        with pytest.raises(SystemExit):
            main(["runs", "list", "someid"])

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["suite", "--orch-trace", "orch.json"])
        assert args.orch_trace == "orch.json"
        args = build_parser().parse_args(["runs", "list", "--limit", "5"])
        assert args.limit == 5
        defaults = build_parser().parse_args(["suite"])
        assert defaults.orch_trace is None and defaults.limit == 20

    def test_bad_limit_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runs", "list", "--limit", "0"])


class TestExecution:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "bimodal" in out

    def test_table1_json(self, capsys, tmp_path):
        # regression: --json used to be silently ignored for table1
        json_path = tmp_path / "t1.json"
        assert main(["table1", "--json", str(json_path)]) == 0
        capsys.readouterr()
        payload = json.loads(json_path.read_text())
        rows = payload["table1"]
        assert rows and all(len(row) == 2 for row in rows)
        assert any("bimodal" in str(v) for row in rows for v in row)

    def test_stats_quick(self, capsys, tmp_path):
        json_path = tmp_path / "stats.json"
        assert main(["stats", "--quick", "--no-progress", "--bench", "field",
                     "--model", "hidisc", "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "CPI stack" in out and "components sum to cycles" in out
        payload = json.loads(json_path.read_text())["stats"]
        cycles = payload["cycles"]
        stacks = payload["cpi_stacks"]
        assert set(stacks) == {"CP", "AP", "CMP"}
        for stack in stacks.values():
            assert sum(stack.values()) == cycles
        assert payload["samples"], "sampler timeseries missing"

    def test_trace_quick(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "--quick", "--no-progress", "--bench", "field",
                     "--model", "superscalar", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out and "perfetto" in out
        doc = json.loads(out_path.read_text())
        events = doc["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "C" for e in events)

    def test_lifecycle_quick_kanata(self, capsys, tmp_path):
        out_path = tmp_path / "run.kanata"
        json_path = tmp_path / "life.json"
        assert main(["lifecycle", "--quick", "--no-progress",
                     "--bench", "field", "--model", "superscalar",
                     "--out", str(out_path), "--json", str(json_path),
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Konata" in out and "Critical-path attribution" in out
        lines = out_path.read_text().splitlines()
        assert lines[0] == "Kanata\t0004"
        assert all(l.split("\t", 1)[0] in
                   {"Kanata", "C=", "C", "I", "L", "S", "E", "R"}
                   for l in lines)
        payload = json.loads(json_path.read_text())["lifecycle"]
        assert payload["benchmark"] == "field"
        assert payload["captured"] == len(payload["records"])
        assert payload["dropped"] == 0
        assert len(payload["critical_path"]) <= 3

    def test_lifecycle_quick_jsonl_with_limit(self, capsys, tmp_path):
        out_path = tmp_path / "run.jsonl"
        assert main(["lifecycle", "--quick", "--no-progress",
                     "--bench", "field", "--model", "superscalar",
                     "--format", "jsonl", "--out", str(out_path),
                     "--lifecycle-limit", "64"]) == 0
        capsys.readouterr()
        rows = [json.loads(l) for l in
                out_path.read_text().splitlines() if l]
        assert rows, "JSONL stream is empty"
        # the stream got every commit even though the ring kept only 64
        assert len(rows) > 64
        assert all(r["fetch"] <= r["commit"] for r in rows)

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["cache", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "0 entries" in out

        # a cached compile shows up in stats, and clear removes it
        assert main(["stats", "--quick", "--no-progress", "--bench", "field",
                     "--model", "superscalar",
                     "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        json_path = tmp_path / "cache.json"
        assert main(["cache", "stats", "--cache-dir", str(cache_dir),
                     "--json", str(json_path)]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert json.loads(json_path.read_text())["cache"]["entries"] == 1
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "1 entries removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_stats_reuses_cached_compile(self, capsys, tmp_path,
                                         monkeypatch):
        cache_dir = tmp_path / "cache"
        common = ["stats", "--quick", "--no-progress", "--bench", "field",
                  "--model", "superscalar", "--cache-dir", str(cache_dir)]
        assert main(common) == 0
        capsys.readouterr()

        import repro.experiments.runner as runner_mod

        def forbidden(workload, config, verify=True):
            raise AssertionError("prepare() called despite a warm cache")

        monkeypatch.setattr(runner_mod, "prepare", forbidden)
        assert main(common) == 0
        assert "CPI stack" in capsys.readouterr().out

    def test_figure10_quick_with_json(self, capsys, tmp_path, monkeypatch):
        # restrict the sweep via monkeypatching to keep this test fast
        import repro.experiments.cli as cli_mod

        original = cli_mod.figure10

        def tiny_figure10(config, quick, seed, progress, compiled=None,
                          **kwargs):
            return original(config, quick=quick, seed=seed,
                            benchmarks=("field",),
                            latencies=((12, 120),), progress=progress,
                            compiled=compiled, **kwargs)

        monkeypatch.setattr(cli_mod, "figure10", tiny_figure10)
        json_path = tmp_path / "out.json"
        assert main(["figure10", "--quick", "--no-progress",
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        payload = json.loads(json_path.read_text())
        assert "figure10" in payload
        assert payload["figure10"]["ipc"]["field"]["hidisc"][0] > 0
