"""Unit tests for repro.utils fixed-width arithmetic and formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    align_down,
    align_up,
    arithmetic_mean,
    bits_to_float,
    float_to_bits,
    format_table,
    geometric_mean,
    ilog2,
    is_power_of_two,
    sign_extend,
    to_signed32,
    to_signed64,
    to_unsigned64,
)


class TestSigned64:
    def test_identity_in_range(self):
        assert to_signed64(42) == 42
        assert to_signed64(-42) == -42

    def test_wraps_positive_overflow(self):
        assert to_signed64(2**63) == -(2**63)
        assert to_signed64(2**64) == 0
        assert to_signed64(2**64 + 5) == 5

    def test_wraps_negative_overflow(self):
        assert to_signed64(-(2**63) - 1) == 2**63 - 1

    def test_max_min(self):
        assert to_signed64(2**63 - 1) == 2**63 - 1
        assert to_signed64(-(2**63)) == -(2**63)

    @given(st.integers(min_value=-(2**70), max_value=2**70))
    def test_canonical_range(self, value):
        wrapped = to_signed64(value)
        assert -(2**63) <= wrapped < 2**63
        assert (wrapped - value) % (2**64) == 0


class TestUnsigned64:
    def test_positive(self):
        assert to_unsigned64(5) == 5

    def test_negative(self):
        assert to_unsigned64(-1) == 2**64 - 1

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_roundtrip(self, value):
        assert to_signed64(to_unsigned64(value)) == value


class TestSignExtend:
    def test_positive_stays(self):
        assert sign_extend(0x7F, 8) == 127

    def test_negative_extends(self):
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x80, 8) == -128

    def test_32bit(self):
        assert sign_extend(0xFFFFFFFF, 32) == -1
        assert to_signed32(0x80000000) == -(2**31)


class TestFloatBits:
    def test_roundtrip_values(self):
        for v in (0.0, 1.0, -1.5, 3.141592653589793, 1e300, -1e-300):
            assert bits_to_float(float_to_bits(v)) == v

    def test_known_pattern(self):
        assert float_to_bits(1.0) == 0x3FF0000000000000

    @given(st.floats(allow_nan=False, allow_infinity=True))
    def test_roundtrip_hypothesis(self, v):
        assert bits_to_float(float_to_bits(v)) == v


class TestAlignment:
    def test_align_down(self):
        assert align_down(17, 8) == 16
        assert align_down(16, 8) == 16

    def test_align_up(self):
        assert align_up(17, 8) == 24
        assert align_up(16, 8) == 16

    def test_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)

    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(256) == 8
        with pytest.raises(ValueError):
            ilog2(3)


class TestMeans:
    def test_geometric(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            arithmetic_mean([])


class TestFormatTable:
    def test_basic_shape(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 6  # border, header, border, 2 rows, border
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "333" in out
