"""Tests for the ProgramBuilder DSL."""

import struct

import pytest

from repro.asm.builder import ProgramBuilder
from repro.asm.program import DATA_BASE
from repro.errors import AssemblyError
from repro.isa import Op
from repro.sim.functional import FunctionalSimulator


class TestLabels:
    def test_forward_and_backward_branches(self):
        b = ProgramBuilder()
        b.li("t0", 0)
        b.label("top")
        b.addi("t0", "t0", 1)
        b.blt("t0", "zero", "top")     # never taken (t0 > 0)
        b.beq("t0", "t0", "end")       # always taken, forward
        b.addi("t0", "t0", 100)        # skipped
        b.label("end")
        b.halt()
        p = b.build()
        assert p.text[2].target == 1
        assert p.text[3].target == 5

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(AssemblyError):
            b.label("x")

    def test_undefined_label_rejected(self):
        b = ProgramBuilder()
        b.j("nowhere")
        b.halt()
        with pytest.raises(AssemblyError):
            b.build()

    def test_la_resolves_data_symbol(self):
        b = ProgramBuilder()
        addr = b.data_i64("v", [7])
        b.la("t0", "v")
        b.halt()
        p = b.build()
        assert p.text[0].imm == addr == DATA_BASE


class TestData:
    def test_i64_layout(self):
        b = ProgramBuilder()
        b.data_i64("a", [1, -2])
        p_addr = b.data_i64("b", [3])
        b.halt()
        p = b.build()
        assert p_addr == DATA_BASE + 16
        assert struct.unpack_from("<q", p.data, 8)[0] == -2

    def test_f64_layout(self):
        b = ProgramBuilder()
        b.data_f64("f", [2.5])
        b.halt()
        p = b.build()
        assert struct.unpack_from("<d", p.data, 0)[0] == 2.5

    def test_alignment_after_bytes(self):
        b = ProgramBuilder()
        b.data_bytes("raw", b"abc")
        addr = b.data_i64("v", [1])
        b.halt()
        assert addr % 8 == 0

    def test_space_is_zeroed(self):
        b = ProgramBuilder()
        b.data_space("z", 32)
        b.halt()
        assert bytes(b.build().data) == b"\0" * 32


class TestImmediates:
    def test_in_range_ok(self):
        b = ProgramBuilder()
        b.li("t0", (1 << 28) - 1)
        b.li("t1", -(1 << 28))
        b.halt()
        b.build()

    def test_out_of_range_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(AssemblyError):
            b.li("t0", 1 << 28)

    def test_out_of_range_names_instruction_and_label(self):
        """Emit-time rejection carries the builder name, the instruction
        index, and the nearest preceding label — enough to find the
        offending builder call without a traceback dig."""
        b = ProgramBuilder("edgecase")
        b.nop()
        b.label("body")
        b.nop()
        with pytest.raises(AssemblyError) as err:
            b.addi("t0", "t0", 1 << 28)
        msg = str(err.value)
        assert "edgecase" in msg
        assert "instruction 2" in msg
        assert "'body'" in msg
        assert "li64" in msg  # points at the remedy

    def test_negative_out_of_range_rejected_at_emit(self):
        b = ProgramBuilder()
        with pytest.raises(AssemblyError) as err:
            b.li("t0", -(1 << 28) - 1)
        assert "instruction 0" in str(err.value)

    def test_undefined_label_error_names_site(self):
        b = ProgramBuilder("jumpy")
        b.label("start")
        b.j("nowhere")
        b.halt()
        with pytest.raises(AssemblyError) as err:
            b.build()
        msg = str(err.value)
        assert "'nowhere'" in msg and "jumpy" in msg
        assert "instruction 0" in msg

    @pytest.mark.parametrize("value", [
        0, 1, -1, (1 << 28) - 1, 1 << 30, -(1 << 40), (1 << 63) - 1,
        -(1 << 63), 0x1234_5678_9ABC_DEF0,
    ])
    def test_li64_materialises(self, value):
        expected = value if value < (1 << 63) else value - (1 << 64)
        b = ProgramBuilder()
        b.data_i64("out", [0])
        b.li64("t0", value)
        b.la("a0", "out")
        b.sd("t0", 0, "a0")
        b.halt()
        p = b.build()
        state = FunctionalSimulator(p).run()
        assert state.memory.load(p.data_symbols["out"], 8) == expected


class TestEmission:
    def test_comment_attaches(self):
        b = ProgramBuilder()
        b.comment("the answer")
        b.li("t0", 42)
        b.halt()
        assert b.build().text[0].comment == "the answer"

    def test_store_operand_order(self):
        b = ProgramBuilder()
        b.sd("t1", 16, "t2")  # data=t1, base=t2
        b.halt()
        i = b.build().text[0]
        assert i.op is Op.SD and i.rs2 == 9 and i.rs1 == 10 and i.imm == 16

    def test_here_tracks_position(self):
        b = ProgramBuilder()
        assert b.here == 0
        b.nop()
        assert b.here == 1

    def test_entry_label(self):
        b = ProgramBuilder()
        b.nop()
        b.label("main")
        b.halt()
        p = b.build(entry_label="main")
        assert p.entry == 1
