"""Durable simulation service (repro.service): crash-safe queue, leased
workers, graceful degradation.

Three layers of coverage:

* **Queue unit tests** — spool-state transitions, dedup, admission
  control, retry/backoff/quarantine accounting, lease expiry, the
  stale-leased-copy recovery rule, cancellation, claim atomicity.
* **Executor tests** — payload parity with a direct ``run_suite``,
  drain/resume round trips, cancellation mid-run — all in-process and
  fully deterministic (no signals, no sleeps beyond lease math).
* **End-to-end subprocess tests** — the acceptance criteria: a SIGKILL'd
  worker's job is requeued by lease expiry and completes with a payload
  identical (modulo wall clock) to an undisturbed run; SIGTERM drains the
  daemon with exit 0, nothing stuck in ``leased/``, and a restarted
  daemon resumes from checkpoints without recomputing finished cells.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.config import MachineConfig
from repro.errors import (
    BackpressureError,
    ConfigError,
    InterruptedRun,
    JobCancelled,
    ServiceError,
)
from repro.experiments import MODEL_ORDER, RunCache, run_suite
from repro.service import (
    JobQueue,
    ServiceClient,
    ServiceServer,
    Worker,
    execute_job,
    job_dedup_key,
    normalize_spec,
)
from repro.telemetry import diff_payloads
from repro.workloads import get_workload

SRC = str(Path(repro.__file__).resolve().parents[1])

POINTER_SPEC = {"kind": "suite", "benchmarks": ["pointer"],
                "modes": ["superscalar", "hidisc"], "quick": True}


def make_queue(tmp_path, **kwargs):
    kwargs.setdefault("retry_backoff", 0.0)
    queue = JobQueue(tmp_path / "svc", **kwargs)
    queue.ensure_layout()
    return queue


def wait_for(predicate, timeout: float, what: str, poll: float = 0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise AssertionError(f"timed out after {timeout:.0f}s waiting for {what}")


# ----------------------------------------------------------------------
# Specs and dedup keys.

class TestSpecs:
    def test_normalize_canonicalizes_modes_and_defaults(self):
        spec = normalize_spec({"modes": ["hidisc", "superscalar", "hidisc"],
                               "benchmarks": ["pointer"]})
        assert spec["modes"] == ["superscalar", "hidisc"]
        assert spec["quick"] is True and spec["seed"] == 2003
        assert normalize_spec({})["modes"] == list(MODEL_ORDER)

    def test_unknown_fields_and_kinds_rejected(self):
        with pytest.raises(ConfigError, match="unknown job spec field"):
            normalize_spec({"bogus": 1})
        with pytest.raises(ConfigError, match="unknown job kind"):
            normalize_spec({"kind": "render"})
        with pytest.raises(ConfigError, match="unknown model"):
            normalize_spec({"modes": ["warpdrive"]})
        with pytest.raises(ConfigError, match="cell_delay"):
            normalize_spec({"cell_delay": -1})

    def test_unknown_benchmark_is_not_gated_at_submission(self):
        # Deliberate: unknown names fail at execution time, which is the
        # poison-job path to quarantine.
        spec = normalize_spec({"benchmarks": ["nosuchbench"]})
        assert spec["benchmarks"] == ["nosuchbench"]

    def test_dedup_key_is_order_insensitive_but_content_sensitive(self):
        config = MachineConfig()
        a = job_dedup_key(normalize_spec(
            {"benchmarks": ["pointer"], "modes": ["hidisc", "superscalar"]}),
            config)
        b = job_dedup_key(normalize_spec(
            {"modes": ["superscalar", "hidisc"], "benchmarks": ["pointer"]}),
            config)
        assert a == b
        c = job_dedup_key(normalize_spec(
            {"benchmarks": ["pointer"], "modes": ["hidisc", "superscalar"],
             "seed": 7}), config)
        assert c != a
        assert job_dedup_key(normalize_spec({"benchmarks": ["pointer"]}),
                             config.with_latency(4, 40)) != \
            job_dedup_key(normalize_spec({"benchmarks": ["pointer"]}), config)


# ----------------------------------------------------------------------
# The spool-state machine.

class TestJobQueue:
    def test_submit_claim_complete_lifecycle(self, tmp_path):
        queue = make_queue(tmp_path)
        record, created = queue.submit(POINTER_SPEC)
        assert created and record.state == "pending"
        assert queue.counts()["pending"] == 1

        claimed = queue.claim("w0")
        assert claimed.job_id == record.job_id
        assert claimed.lease["worker"] == "w0"
        assert queue.counts() == {"pending": 0, "leased": 1, "done": 0,
                                  "failed": 0, "quarantined": 0}

        assert queue.complete(claimed, tmp_path / "r.json", worker="w0")
        final = queue.get(record.job_id)
        assert final.state == "done" and final.outcome == "completed"
        assert final.attempts == 0
        kinds = [e["kind"] for e in queue.read_events(record.job_id)]
        assert kinds == ["submitted", "leased", "state"]

    def test_duplicate_submission_shares_one_job(self, tmp_path):
        queue = make_queue(tmp_path)
        first, created = queue.submit(POINTER_SPEC)
        again, created2 = queue.submit(
            {"kind": "suite", "modes": ["hidisc", "superscalar"],
             "benchmarks": ["pointer"], "quick": True})
        assert created and not created2
        assert again.job_id == first.job_id and again.submitted == 2
        assert queue.counts()["pending"] == 1
        different, created3 = queue.submit({**POINTER_SPEC, "seed": 7})
        assert created3 and different.job_id != first.job_id

    def test_backpressure_rejects_past_max_depth(self, tmp_path):
        queue = make_queue(tmp_path, max_depth=1)
        queue.submit(POINTER_SPEC)
        with pytest.raises(BackpressureError, match="queue is full"):
            queue.submit({**POINTER_SPEC, "seed": 99})
        # Dedup hits are not admissions: resubmitting the queued job works.
        _, created = queue.submit(POINTER_SPEC)
        assert not created

    def test_fail_retries_with_backoff_then_quarantines(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=2, retry_backoff=30.0)
        record, _ = queue.submit(POINTER_SPEC)
        claimed = queue.claim("w0")
        assert queue.fail(claimed, "boom", traceback_text="tb1",
                          worker="w0") == "pending"
        requeued = queue.get(record.job_id)
        assert requeued.attempts == 1
        assert requeued.not_before > time.time(), \
            "a failed job must back off before its retry"
        assert queue.claim("w0") is None, \
            "backoff must hide the job from claimants"

        requeued.not_before = 0.0
        queue._publish(requeued, "pending")
        claimed = queue.claim("w1")
        assert queue.fail(claimed, "boom again", traceback_text="tb2",
                          worker="w1") == "quarantined"
        final = queue.get(record.job_id)
        assert final.state == "quarantined" and final.attempts == 2
        assert final.traceback == "tb2"
        assert queue.claim("w2") is None, "quarantine removes the job"

    def test_lease_expiry_requeues_and_charges_an_attempt(self, tmp_path):
        queue = make_queue(tmp_path, lease_ttl=10.0)
        record, _ = queue.submit(POINTER_SPEC)
        queue.claim("w0")
        assert queue.expire_leases() == [], "a live lease must survive"
        acted = queue.expire_leases(now=time.time() + 11.0)
        assert acted == [record.job_id]
        requeued = queue.get(record.job_id)
        assert requeued.state == "pending" and requeued.attempts == 1
        assert requeued.lease is None
        assert any(e["kind"] == "lease_expired"
                   for e in queue.read_events(record.job_id))

    def test_crash_loop_quarantines_via_lease_expiry(self, tmp_path):
        queue = make_queue(tmp_path, lease_ttl=10.0, max_attempts=1)
        record, _ = queue.submit(POINTER_SPEC)
        queue.claim("w0")
        queue.expire_leases(now=time.time() + 11.0)
        final = queue.get(record.job_id)
        assert final.state == "quarantined"
        assert "lease expired" in final.error

    def test_claim_without_lease_rewrite_expires_immediately(self, tmp_path):
        """A worker that died between the claim rename and the lease
        rewrite leaves a leased record with no lease — it must expire on
        the next reaper pass, not linger forever."""
        queue = make_queue(tmp_path)
        record, _ = queue.submit(POINTER_SPEC)
        os.rename(queue.record_path(record.job_id, "pending"),
                  queue.record_path(record.job_id, "leased"))
        assert queue.expire_leases() == [record.job_id]
        assert queue.get(record.job_id).state == "pending"

    def test_renew_extends_and_detects_lost_leases(self, tmp_path):
        queue = make_queue(tmp_path, lease_ttl=10.0)
        record, _ = queue.submit(POINTER_SPEC)
        claimed = queue.claim("w0")
        before = claimed.lease["deadline"]
        time.sleep(0.02)
        renewed = queue.renew(record.job_id, "w0")
        assert renewed.lease["deadline"] > before
        assert renewed.lease["renewals"] == 1
        assert queue.renew(record.job_id, "intruder") is None
        queue.expire_leases(now=time.time() + 11.0)
        assert queue.renew(record.job_id, "w0") is None, \
            "an expired (requeued) lease must not renew"

    def test_release_is_attempt_neutral(self, tmp_path):
        queue = make_queue(tmp_path)
        record, _ = queue.submit(POINTER_SPEC)
        claimed = queue.claim("w0")
        queue.release(claimed, worker="w0")
        requeued = queue.get(record.job_id)
        assert requeued.state == "pending" and requeued.attempts == 0
        assert queue.counts()["leased"] == 0
        assert queue.claim("w1") is not None, \
            "a drained job must be immediately reclaimable"

    def test_complete_with_lost_lease_drops_the_result(self, tmp_path):
        queue = make_queue(tmp_path, lease_ttl=10.0)
        record, _ = queue.submit(POINTER_SPEC)
        claimed = queue.claim("w0")
        queue.expire_leases(now=time.time() + 11.0)  # w0 loses the job
        relaimed = queue.claim("w1")
        assert not queue.complete(claimed, tmp_path / "stale.json",
                                  worker="w0")
        assert queue.get(record.job_id).state == "leased", \
            "a stale completion must not clobber the new owner"
        assert queue.fail(claimed, "stale", worker="w0") == "lost"
        assert queue.complete(relaimed, tmp_path / "r.json", worker="w1")

    def test_stale_leased_copy_recovery_rule(self, tmp_path):
        """Crash between write-destination and unlink-leased leaves the
        job in both directories; recovery drops the leased copy."""
        queue = make_queue(tmp_path)
        record, _ = queue.submit(POINTER_SPEC)
        claimed = queue.claim("w0")
        queue._publish(claimed, "done")  # crash before unlinking leased/
        queue._publish(claimed, "leased")
        assert queue.record_path(record.job_id, "leased").exists()
        assert queue.record_path(record.job_id, "done").exists()
        queue.expire_leases()
        assert not queue.record_path(record.job_id, "leased").exists()
        assert queue.get(record.job_id).state == "done"

    def test_cancel_pending_finalizes_immediately(self, tmp_path):
        queue = make_queue(tmp_path)
        record, _ = queue.submit(POINTER_SPEC)
        assert queue.request_cancel(record.job_id) == "failed"
        final = queue.get(record.job_id)
        assert final.state == "failed" and final.outcome == "cancelled"
        assert queue.claim("w0") is None

    def test_cancel_leased_leaves_marker_and_fail_honours_it(self, tmp_path):
        queue = make_queue(tmp_path)
        record, _ = queue.submit(POINTER_SPEC)
        claimed = queue.claim("w0")
        assert queue.request_cancel(record.job_id) == "leased"
        assert queue.cancel_marker(record.job_id).exists()
        # The worker's failure path observes the marker: no retry.
        assert queue.fail(claimed, "err", worker="w0") == "failed"
        assert queue.get(record.job_id).outcome == "cancelled"

    def test_cancel_unknown_and_terminal_jobs(self, tmp_path):
        queue = make_queue(tmp_path)
        with pytest.raises(ServiceError, match="unknown job"):
            queue.request_cancel("nope")
        record, _ = queue.submit(POINTER_SPEC)
        claimed = queue.claim("w0")
        queue.complete(claimed, tmp_path / "r.json", worker="w0")
        assert queue.request_cancel(record.job_id) == "done", \
            "cancelling a finished job is a no-op reporting its state"

    def test_claim_is_atomic_under_contention(self, tmp_path):
        queue = make_queue(tmp_path, max_depth=64)
        for seed in range(6):
            queue.submit({**POINTER_SPEC, "seed": seed})
        claimed: list[str] = []
        lock = threading.Lock()

        def grab(worker):
            while True:
                record = queue.claim(worker)
                if record is None:
                    return
                with lock:
                    claimed.append(record.job_id)

        threads = [threading.Thread(target=grab, args=(f"w{i}",))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(claimed) == 6
        assert len(set(claimed)) == 6, "every job claimed exactly once"

    def test_torn_record_files_are_skipped(self, tmp_path):
        queue = make_queue(tmp_path)
        (queue.state_dir("pending") / "torn.json").write_text("{not json")
        assert queue.claim("w0") is None
        assert queue.list_jobs() == []

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            JobQueue(tmp_path, max_depth=0)
        with pytest.raises(ConfigError):
            JobQueue(tmp_path, lease_ttl=0)
        with pytest.raises(ConfigError):
            JobQueue(tmp_path, max_attempts=0)


# ----------------------------------------------------------------------
# The executor: parity, drain/resume, cancellation — all in-process.

class TestExecutor:
    def test_payload_parity_with_direct_run_suite(self, tmp_path):
        queue = make_queue(tmp_path)
        record, _ = queue.submit(POINTER_SPEC)
        claimed = queue.claim("w0")
        path = execute_job(queue, claimed, "w0",
                           cache=RunCache(tmp_path / "cache-a"))
        assert queue.complete(claimed, path, worker="w0")
        payload = queue.load_result(queue.get(record.job_id))

        reference = run_suite(
            MachineConfig(), quick=True, seed=2003,
            modes=("superscalar", "hidisc"),
            workloads=[get_workload("pointer", quick=True, seed=2003)],
            cache=RunCache(tmp_path / "cache-b"))
        report = diff_payloads(payload, reference.to_payload())
        assert report["identical"], report

    def test_drain_resume_round_trip(self, tmp_path):
        """InterruptedRun mid-job -> release -> re-claim resumes from the
        checkpoint and the final payload matches an undisturbed run."""
        cache = RunCache(tmp_path / "cache")
        queue = make_queue(tmp_path)
        record, _ = queue.submit(POINTER_SPEC)
        claimed = queue.claim("w0")

        cells = []

        def stop_after_first_cell():
            return len(cells) >= 1

        real_append = queue.append_event

        def tracking_append(job_id, kind, **fields):
            if kind == "cell":
                cells.append((fields["benchmark"], fields["mode"],
                              fields["resumed"]))
            real_append(job_id, kind, **fields)

        queue.append_event = tracking_append
        with pytest.raises(InterruptedRun):
            execute_job(queue, claimed, "w0", cache=cache,
                        should_stop=stop_after_first_cell)
        queue.release(claimed, worker="w0")
        assert cells == [("pointer", "superscalar", False)]
        mid = queue.get(record.job_id)
        assert mid.state == "pending" and mid.attempts == 0
        assert mid.cells_done == 1

        reclaimed = queue.claim("w1")
        path = execute_job(queue, reclaimed, "w1", cache=cache)
        assert queue.complete(reclaimed, path, worker="w1")
        assert cells[1] == ("pointer", "superscalar", True), \
            "the finished cell must resume, not recompute"
        assert cells[2] == ("pointer", "hidisc", False)

        payload = queue.load_result(queue.get(record.job_id))
        reference = run_suite(
            MachineConfig(), quick=True, seed=2003,
            modes=("superscalar", "hidisc"),
            workloads=[get_workload("pointer", quick=True, seed=2003)],
            cache=RunCache(tmp_path / "cache-ref"))
        assert diff_payloads(payload, reference.to_payload())["identical"]

    def test_cancellation_observed_at_cell_boundary(self, tmp_path):
        queue = make_queue(tmp_path)
        record, _ = queue.submit(POINTER_SPEC)
        claimed = queue.claim("w0")
        queue.request_cancel(record.job_id)
        with pytest.raises(JobCancelled):
            execute_job(queue, claimed, "w0",
                        cache=RunCache(tmp_path / "cache"))
        queue.cancel_job(claimed, worker="w0")
        final = queue.get(record.job_id)
        assert final.state == "failed" and final.outcome == "cancelled"

    def test_worker_run_one_quarantines_poison_jobs(self, tmp_path):
        queue = make_queue(tmp_path, max_attempts=2)
        record, _ = queue.submit({"benchmarks": ["nosuchbench"],
                                  "quick": True,
                                  "modes": ["superscalar"]})
        worker = Worker(queue, "w0", cache=RunCache(tmp_path / "cache"),
                        stream=open(os.devnull, "w"))
        assert worker.run_one(queue.claim("w0")) == "pending"
        assert worker.run_one(queue.claim("w0")) == "quarantined"
        final = queue.get(record.job_id)
        assert final.state == "quarantined"
        assert "nosuchbench" in final.error
        assert "Traceback" in final.traceback


# ----------------------------------------------------------------------
# The HTTP layer (in-process server; no worker subprocesses).

@pytest.fixture
def http_service(tmp_path):
    server = ServiceServer(tmp_path / "svc", port=0, workers=0,
                           max_depth=2, lease_ttl=5.0,
                           stream=open(os.devnull, "w"))
    server.start()
    try:
        yield server, ServiceClient(f"http://127.0.0.1:{server.port}")
    finally:
        server.drain()


class TestHttpApi:
    def test_submit_get_list_cancel(self, http_service):
        server, client = http_service
        response = client.submit(POINTER_SPEC)
        assert response["created"] is True
        job_id = response["job_id"]

        record = client.job(job_id)
        assert record["state"] == "pending"
        assert record["spec"]["benchmarks"] == ["pointer"]
        assert [j["job_id"] for j in client.jobs()] == [job_id]

        again = client.submit(POINTER_SPEC)
        assert again["created"] is False and again["submitted"] == 2

        cancelled = client.cancel(job_id)
        assert cancelled["state"] == "failed"
        assert client.job(job_id)["outcome"] == "cancelled"

    def test_bad_spec_is_400_and_unknown_job_404(self, http_service):
        _, client = http_service
        with pytest.raises(ServiceError, match="HTTP 400"):
            client.submit({"kind": "render"})
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.job("nope")
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.cancel("nope")

    def test_admission_control_is_429(self, http_service):
        _, client = http_service
        client.submit({**POINTER_SPEC, "seed": 1})
        client.submit({**POINTER_SPEC, "seed": 2})
        with pytest.raises(BackpressureError, match="queue is full"):
            client.submit({**POINTER_SPEC, "seed": 3})

    def test_result_before_completion_is_409(self, http_service):
        _, client = http_service
        job_id = client.submit(POINTER_SPEC)["job_id"]
        with pytest.raises(ServiceError, match="HTTP 409"):
            client.result(job_id)

    def test_events_endpoint_streams_jsonl(self, http_service):
        server, client = http_service
        job_id = client.submit(POINTER_SPEC)["job_id"]
        server.queue.request_cancel(job_id)
        events = list(client.events(job_id, follow=True))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "submitted"
        assert "state" in kinds, "terminal transition must be streamed"

    def test_health_reports_counts(self, http_service):
        _, client = http_service
        health = client.health()
        assert health["counts"]["pending"] == 0
        assert health["draining"] is False
        assert "version" in health

    def test_unreachable_service_is_a_typed_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError, match="is `hidisc serve` running"):
            client.health()


# ----------------------------------------------------------------------
# End-to-end: real daemon, real workers, real signals.

class ServeDaemon:
    """`hidisc serve` as a subprocess, with its stderr tailed."""

    def __init__(self, *extra: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.cli", "serve",
             "--port", "0", *extra],
            env=env, stderr=subprocess.PIPE, text=True)
        self.lines: list[str] = []
        self._tail = threading.Thread(target=self._drain_stderr,
                                      daemon=True)
        self._tail.start()

    def _drain_stderr(self):
        for line in self.proc.stderr:
            self.lines.append(line.rstrip("\n"))

    def client(self, timeout: float = 30.0) -> ServiceClient:
        def port():
            for line in list(self.lines):
                match = re.search(r"listening on http://[^:]+:(\d+)", line)
                if match:
                    return match.group(1)
            if self.proc.poll() is not None:
                raise AssertionError(
                    f"serve died before listening:\n" + "\n".join(self.lines))
            return None
        return ServiceClient(f"http://127.0.0.1:{wait_for(port, timeout, 'serve to listen')}")

    def stop(self, timeout: float = 60.0) -> int:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            raise AssertionError(
                "serve did not drain on SIGTERM:\n" + "\n".join(self.lines))

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


def reference_pointer_payload(tmp_path, modes=("superscalar", "cp_ap",
                                               "cp_cmp", "hidisc")):
    suite = run_suite(
        MachineConfig(), quick=True, seed=2003, modes=tuple(modes),
        workloads=[get_workload("pointer", quick=True, seed=2003)],
        cache=RunCache(tmp_path / "reference-cache"))
    return suite.to_payload()


@pytest.mark.slow
class TestEndToEnd:
    def test_sigkilled_worker_job_requeues_and_completes(self, tmp_path):
        """The headline guarantee: SIGKILL a worker mid-job; the lease
        expires, the job requeues (one attempt charged), a fresh worker
        resumes it from checkpoints, and the payload is identical to an
        undisturbed run modulo wall-clock."""
        daemon = ServeDaemon("--workers", "1", "--lease-ttl", "1.5",
                             "--retry-backoff", "0.1")
        try:
            client = daemon.client()
            job_id = client.submit({"benchmarks": ["pointer"],
                                    "quick": True,
                                    "cell_delay": 0.75})["job_id"]

            def first_cell_done():
                record = client.job(job_id)
                if record["state"] == "leased" and \
                        record["cells_done"] >= 1 and record.get("lease"):
                    return record
                return None

            leased = wait_for(first_cell_done, 60,
                              "the first checkpointed cell")
            os.kill(leased["lease"]["pid"], signal.SIGKILL)

            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done", final
            assert final["outcome"] == "completed"
            assert final["attempts"] == 1, \
                "the SIGKILL must charge exactly one lease-expiry attempt"
            kinds = [e["kind"] for e in client.events(job_id)]
            assert "lease_expired" in kinds
            resumed = [e for e in client.events(job_id)
                       if e["kind"] == "cell" and e["resumed"]]
            assert resumed, "the re-leased run must resume finished cells"

            payload = client.result(job_id)
            report = diff_payloads(payload,
                                   reference_pointer_payload(tmp_path))
            assert report["identical"], report
            assert daemon.stop() == 0
        finally:
            daemon.kill()

    def test_sigterm_drains_cleanly_and_restart_resumes(self, tmp_path):
        """SIGTERM mid-job: exit 0, nothing in leased/, the job back in
        pending attempt-neutrally; a restarted daemon finishes it from
        checkpoints without recomputing finished cells."""
        spool = Path(os.environ["HIDISC_CACHE_DIR"]) / "service"
        daemon = ServeDaemon("--workers", "1", "--lease-ttl", "10")
        try:
            client = daemon.client()
            job_id = client.submit({"benchmarks": ["pointer"],
                                    "quick": True,
                                    "cell_delay": 0.75})["job_id"]
            wait_for(lambda: client.job(job_id)["cells_done"] >= 1, 60,
                     "the first checkpointed cell")
            assert daemon.stop() == 0, \
                "graceful drain must exit 0:\n" + "\n".join(daemon.lines)
        finally:
            daemon.kill()

        assert list((spool / "jobs" / "leased").glob("*.json")) == [], \
            "a clean drain leaves nothing leased"
        parked = json.loads(
            (spool / "jobs" / "pending" / f"{job_id}.json").read_text())
        assert parked["attempts"] == 0, "draining is attempt-neutral"
        cells_at_drain = parked["cells_done"]
        assert cells_at_drain >= 1

        second = ServeDaemon("--workers", "1", "--lease-ttl", "10")
        try:
            client = second.client()
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done" and final["attempts"] == 0
            resumed = [e for e in client.events(job_id)
                       if e["kind"] == "cell" and e["resumed"]]
            assert len(resumed) >= cells_at_drain, \
                "finished cells must replay from checkpoints, not recompute"
            payload = client.result(job_id)
            assert diff_payloads(
                payload, reference_pointer_payload(tmp_path))["identical"]
            assert second.stop() == 0
        finally:
            second.kill()

    def test_cli_clients_round_trip(self, tmp_path, capsys):
        """hidisc submit --wait / jobs / cancel against a live daemon."""
        from repro.experiments.cli import main

        daemon = ServeDaemon("--workers", "1", "--lease-ttl", "10")
        try:
            client = daemon.client()
            url = client.url
            code = main(["submit", "--url", url, "--benchmarks", "pointer",
                         "--modes", "superscalar", "--quick", "--wait",
                         "--no-progress"])
            out = capsys.readouterr().out
            assert code == 0
            assert "submitted" in out and "done" in out
            job_id = re.search(r"job (\S+): submitted", out).group(1)

            assert main(["jobs", "--url", url, "--no-progress"]) == 0
            listing = capsys.readouterr().out
            assert job_id in listing and "done/completed" in listing

            assert main(["jobs", job_id, "--url", url,
                         "--no-progress"]) == 0
            record = json.loads(capsys.readouterr().out)
            assert record["state"] == "done"

            assert main(["cancel", job_id, "--url", url,
                         "--no-progress"]) == 0
            assert "state: done" in capsys.readouterr().out, \
                "cancelling a finished job reports its terminal state"
            assert daemon.stop() == 0
        finally:
            daemon.kill()
