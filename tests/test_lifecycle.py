"""Lifecycle-tracing tests: capture correctness, cycle neutrality, the
critical-path decomposition, Konata/Chrome export, and the heartbeat.

The two central properties, asserted on real compiled benchmarks across
all four machine models:

* capture is **complete and well-ordered** — one record per committed
  dynamic instruction, stages monotone
  (fetch <= dispatch <= ready <= issue < complete <= commit), records in
  commit order;
* capture is **cycle-neutral** — a run with a collector attached reports
  exactly the cycle count of a run without one.
"""

from __future__ import annotations

import dataclasses
import io
import json

import pytest

from repro.config import MachineConfig
from repro.errors import CycleLimitError
from repro.sim import Machine, generate_trace
from repro.telemetry import (
    LIFECYCLE_COMPONENTS,
    Heartbeat,
    LifecycleCollector,
    MemorySink,
    Telemetry,
    breakdown_row,
    critical_path_by_pc,
    konata_lines,
    lifecycle_to_chrome,
    render_critical_path,
    write_konata,
)
from repro.telemetry.sinks import ChromeTraceSink

from .conftest import build_load_compute_store, build_store_loop
from .test_telemetry import _compile_all_modes


def _run_with_lifecycle(config, program, mode="superscalar", **collector_kw):
    kw = _compile_all_modes(program, config)[mode]
    prog = kw.pop("program")
    trace = kw.pop("trace")
    life = LifecycleCollector(**collector_kw)
    tel = Telemetry(cpi=True, lifecycle=life)
    result = Machine(config, prog.copy(), trace, mode=mode,
                     telemetry=tel, **kw).run()
    return result, life


MODES = ("superscalar", "cp_ap", "cp_cmp", "hidisc")


class TestLifecycleCapture:
    @pytest.mark.parametrize("mode", MODES)
    def test_one_record_per_committed_instruction(self, config, mode):
        program = build_load_compute_store(64)
        result, life = _run_with_lifecycle(config, program, mode)
        assert life.committed == sum(result.committed.values())
        assert life.dropped == 0
        assert len(life.records) == life.committed
        assert not life._inflight  # everything fetched was retired

    @pytest.mark.parametrize("mode", MODES)
    def test_stages_monotone_and_commit_ordered(self, config, mode):
        program = build_load_compute_store(64)
        _, life = _run_with_lifecycle(config, program, mode)
        rows = life.rows()
        assert rows
        for row in rows:
            assert (row["fetch"] <= row["dispatch"] <= row["ready"]
                    <= row["issue"] < row["complete"] <= row["commit"]), row
        commits = [row["commit"] for row in rows]
        assert commits == sorted(commits)

    @pytest.mark.parametrize("mode", MODES)
    def test_capture_is_cycle_neutral(self, config, mode):
        """The collector is a pure observer: cycles and cache behaviour
        are identical with and without it (the sched-parity guarantee)."""
        program = build_load_compute_store(64)
        kw = _compile_all_modes(program, config)[mode]
        prog, trace = kw.pop("program"), kw.pop("trace")
        off = Machine(config, prog.copy(), trace, mode=mode, **kw).run()
        on, _ = _run_with_lifecycle(config, program, mode)
        assert on.cycles == off.cycles
        assert on.l1.demand_misses == off.l1.demand_misses
        assert on.committed == off.committed

    def test_per_core_commit_counts(self, config):
        program = build_load_compute_store(64)
        result, life = _run_with_lifecycle(config, program, "hidisc")
        by_core: dict[str, int] = {}
        for row in life.rows():
            by_core[row["core"]] = by_core.get(row["core"], 0) + 1
        assert by_core == dict(result.committed)

    def test_ring_buffer_caps_and_counts_drops(self, config):
        program = build_load_compute_store(64)
        result, life = _run_with_lifecycle(config, program, "superscalar",
                                           max_records=10)
        total = sum(result.committed.values())
        assert len(life.records) == 10
        assert life.committed == total
        assert life.dropped == total - 10
        # the ring keeps the newest window, still in commit order
        commits = [life.row(r)["commit"] for r in life.records]
        assert commits == sorted(commits)
        assert commits[-1] <= result.total_cycles

    def test_jsonl_streaming(self, config, tmp_path):
        path = tmp_path / "life.jsonl"
        program = build_store_loop(32)
        result, life = _run_with_lifecycle(config, program, "superscalar",
                                           jsonl_path=path)
        summary = life.close()
        rows = [json.loads(line) for line in
                path.read_text().splitlines() if line]
        assert len(rows) == life.committed == summary["streamed"]
        assert rows[0].keys() >= {"gid", "pc", "asm", "fetch", "commit"}
        # the stream is the same data as the ring
        assert rows == life.rows()

    def test_rebind_rejected(self, config):
        program = build_store_loop(32)
        trace, _ = generate_trace(program)
        life = LifecycleCollector()
        tel = Telemetry(cpi=False, lifecycle=life)
        Machine(config, program.copy(), trace, mode="superscalar",
                telemetry=tel).run()
        with pytest.raises(ValueError, match="exactly one run"):
            Machine(config, program.copy(), trace, mode="superscalar",
                    telemetry=tel)

    def test_bad_max_records_rejected(self):
        with pytest.raises(ValueError):
            LifecycleCollector(max_records=0)


class TestCriticalPath:
    def test_breakdown_sums_to_commit_latency(self, config):
        program = build_load_compute_store(64)
        _, life = _run_with_lifecycle(config, program, "hidisc")
        for row in life.rows():
            parts = breakdown_row(row)
            assert set(parts) == set(LIFECYCLE_COMPONENTS)
            assert sum(parts.values()) == row["commit"] - row["fetch"], row

    def test_memory_levels_resolved(self, config):
        program = build_load_compute_store(64)
        _, life = _run_with_lifecycle(config, program, "superscalar")
        levels = {row["mem"] for row in life.rows()}
        assert "" in levels          # non-memory instructions
        assert levels & {"l1", "l2", "mem"}  # and real accesses

    def test_aggregation_by_static_pc(self, config):
        program = build_load_compute_store(64)
        result, life = _run_with_lifecycle(config, program, "hidisc")
        rows = life.rows()
        summary = critical_path_by_pc(rows)
        assert sum(e["count"] for e in summary) == len(rows)
        totals = [e["total"] for e in summary]
        assert totals == sorted(totals, reverse=True)
        for e in summary:
            assert e["total"] == sum(e[c] for c in LIFECYCLE_COMPONENTS)

    def test_render(self, config):
        program = build_store_loop(32)
        _, life = _run_with_lifecycle(config, program, "superscalar")
        text = render_critical_path(critical_path_by_pc(life.rows()),
                                    limit=5)
        assert "total" in text and "ldq" in text
        assert render_critical_path([]).startswith("(no lifecycle")


class TestKonataExport:
    @pytest.fixture(scope="class")
    def rows(self):
        config = MachineConfig()
        program = build_load_compute_store(64)
        _, life = _run_with_lifecycle(config, program, "hidisc")
        return life.rows()

    def test_header_and_grammar(self, rows):
        lines = konata_lines(rows)
        assert lines[0] == "Kanata\t0004"
        assert lines[1].startswith("C=\t")
        commands = {line.split("\t", 1)[0] for line in lines}
        assert commands <= {"Kanata", "C=", "C", "I", "L", "S", "E", "R"}

    def test_cycle_commands_monotone(self, rows):
        cycle = None
        for line in konata_lines(rows):
            parts = line.split("\t")
            if parts[0] == "C=":
                cycle = int(parts[1])
            elif parts[0] == "C":
                assert int(parts[1]) > 0
                cycle += int(parts[1])
        assert cycle is not None

    def test_stage_sequence_per_instruction_monotone(self, rows):
        """Replaying the log, every uid's S/E events are properly nested
        per lane and non-decreasing in cycle, and R lands at commit."""
        opened: dict[tuple[int, str], int] = {}
        retired: dict[int, int] = {}
        cycle = 0
        for line in konata_lines(rows):
            parts = line.split("\t")
            cmd = parts[0]
            if cmd in ("C=", "C"):
                cycle = (int(parts[1]) if cmd == "C="
                         else cycle + int(parts[1]))
            elif cmd == "S":
                key = (int(parts[1]), parts[3])
                assert key not in opened, f"stage {key} reopened"
                opened[key] = cycle
            elif cmd == "E":
                key = (int(parts[1]), parts[3])
                assert opened.pop(key) <= cycle
            elif cmd == "R":
                retired[int(parts[1])] = cycle
        assert not opened, "unclosed stages"
        assert len(retired) == len(rows)
        for uid, row in enumerate(rows):
            assert retired[uid] == row["commit"]
        # retire ids follow commit order
        order = [uid for uid, _ in sorted(retired.items(),
                                          key=lambda kv: (kv[1], kv[0]))]
        assert order == sorted(order)

    def test_labels_carry_disassembly(self, rows):
        lines = konata_lines(rows[:5])
        labels = [l for l in lines if l.startswith("L\t")]
        assert any(": " in l for l in labels)      # "pc: asm" type-0 label
        assert any("core=" in l for l in labels)   # type-1 detail label

    def test_write_konata_roundtrip(self, rows, tmp_path):
        path = tmp_path / "out.kanata"
        count = write_konata(rows, path)
        assert count == len(rows)
        text = path.read_text()
        assert text.startswith("Kanata\t0004\n")
        assert text.endswith("\n")


class TestChromeLifecycleExport:
    def test_per_instruction_spans(self, config, tmp_path):
        program = build_store_loop(32)
        _, life = _run_with_lifecycle(config, program, "superscalar")
        rows = life.rows()
        path = tmp_path / "spans.json"
        sink = ChromeTraceSink(path)
        emitted = lifecycle_to_chrome(rows, sink)
        sink.close()
        assert emitted == len(rows)
        doc = json.loads(path.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == len(rows)
        first = spans[0]["args"]
        assert {"gid", "fetch", "commit", "breakdown"} <= first.keys()
        assert all(v for v in first["breakdown"].values())

    def test_memory_sink_receives_spans(self, config):
        program = build_store_loop(32)
        _, life = _run_with_lifecycle(config, program, "superscalar")
        sink = MemorySink()
        lifecycle_to_chrome(life.rows(), sink)
        tracks = sink.tracks()
        assert "main pipeline" in tracks


class TestHeartbeat:
    def test_emits_status_lines(self, config):
        program = build_load_compute_store(64)
        trace, _ = generate_trace(program)
        stream = io.StringIO()
        hb = Heartbeat(interval=50, stream=stream)
        tel = Telemetry(cpi=False, heartbeat=hb)
        result = Machine(config, program.copy(), trace, mode="superscalar",
                         telemetry=tel).run()
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert hb.emitted == len(lines) > 0
        assert all(l.startswith("[hb] cycle=") for l in lines)
        assert "ipc=" in lines[-1] and "ldq=" in lines[-1]
        assert "host_cps=" in lines[-1]
        cycles = [int(l.split("cycle=")[1].split()[0]) for l in lines]
        assert cycles == sorted(cycles)
        assert cycles[-1] <= result.total_cycles

    def test_heartbeat_is_cycle_neutral(self, config):
        program = build_load_compute_store(64)
        trace, _ = generate_trace(program)
        off = Machine(config, program.copy(), trace,
                      mode="superscalar").run()
        hb = Heartbeat(interval=25, stream=io.StringIO())
        on = Machine(config, program.copy(), trace, mode="superscalar",
                     telemetry=Telemetry(cpi=False, heartbeat=hb)).run()
        assert on.cycles == off.cycles

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat(0)

    def test_live_autodetect_is_off_for_test_streams(self):
        assert Heartbeat(5, stream=io.StringIO()).live is False

    def test_live_mode_rewrites_in_place_and_clears_on_finish(self, config):
        program = build_load_compute_store(64)
        trace, _ = generate_trace(program)
        stream = io.StringIO()
        hb = Heartbeat(interval=50, stream=stream, live=True)
        tel = Telemetry(cpi=False, heartbeat=hb)
        Machine(config, program.copy(), trace, mode="superscalar",
                telemetry=tel).run()
        text = stream.getvalue()
        assert hb.emitted > 0
        assert "\n" not in text, "live mode stays on one line"
        assert text.count("\r") >= hb.emitted
        # the run loop called finish(): the line is wiped and closed
        assert hb._open_width == 0
        assert text.endswith("\r")
        tail = text.rsplit("\r", 2)[-2]
        assert tail.strip() == "", "finish() blanks the status line"

    def test_live_line_cleared_on_exception(self, config):
        program = build_load_compute_store(64)
        trace, _ = generate_trace(program)
        limited = dataclasses.replace(config, max_cycles=60)
        stream = io.StringIO()
        hb = Heartbeat(interval=10, stream=stream, live=True)
        tel = Telemetry(cpi=False, heartbeat=hb)
        with pytest.raises(CycleLimitError):
            Machine(limited, program.copy(), trace, mode="superscalar",
                    telemetry=tel).run()
        assert hb.emitted > 0
        assert hb._open_width == 0, \
            "an aborted run must not leave a torn \\r line"
        assert stream.getvalue().endswith("\r")

    def test_finish_is_idempotent_and_noop_when_closed(self):
        stream = io.StringIO()
        hb = Heartbeat(interval=5, stream=stream, live=True)
        hb.finish()
        assert stream.getvalue() == ""
        hb._open_width = 4
        hb.finish()
        hb.finish()
        assert stream.getvalue() == "\r    \r"

    def test_telemetry_close_finishes_heartbeat(self):
        stream = io.StringIO()
        hb = Heartbeat(interval=5, stream=stream, live=True)
        hb._open_width = 3
        Telemetry(cpi=False, heartbeat=hb).close()
        assert hb._open_width == 0
        assert stream.getvalue() == "\r   \r"

    def test_non_tty_stream_never_sees_carriage_returns(self, config):
        """CI logs / pipes / the service's captured worker stderr must get
        plain newline-terminated lines — no ``\\r`` control sequences."""
        program = build_load_compute_store(64)
        trace, _ = generate_trace(program)
        stream = io.StringIO()
        hb = Heartbeat(interval=25, stream=stream)  # autodetects non-TTY
        Machine(config, program.copy(), trace, mode="superscalar",
                telemetry=Telemetry(cpi=False, heartbeat=hb)).run()
        text = stream.getvalue()
        assert hb.emitted > 0
        assert "\r" not in text
        assert text.endswith("\n")

    def test_snapshot_shares_the_status_line_schema(self, config):
        """snapshot() is the machine-readable twin of the rendered line
        (the service's job heartbeats reuse this schema) and must neither
        write nor reschedule."""
        program = build_load_compute_store(64)
        trace, _ = generate_trace(program)
        stream = io.StringIO()
        hb = Heartbeat(interval=50, stream=stream)
        machine = Machine(config, program.copy(), trace, mode="superscalar",
                          telemetry=Telemetry(cpi=False, heartbeat=hb))
        result = machine.run()
        before = (hb.next_at, hb.emitted, stream.getvalue())
        snap = hb.snapshot(machine, result.total_cycles)
        assert set(snap) == {"cycle", "ipc", "ldq", "sdq", "saq", "host_cps"}
        assert snap["cycle"] == result.total_cycles
        assert snap["ipc"] > 0
        assert all(snap[q] >= 0 for q in ("ldq", "sdq", "saq"))
        json.dumps(snap)  # JSON-ready for event streams
        assert (hb.next_at, hb.emitted, stream.getvalue()) == before, \
            "snapshot must not advance the schedule or write to the stream"
