#!/usr/bin/env python3
"""Reproduce the paper's compiler walk-through (Figures 5, 6 and 7).

The paper separates the inner product of Livermore loop 1 (lll1),

    x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])

into the Access Stream and Computation Stream, then derives the CMAS from
a probable-miss load.  This example does the same with our compiler and
prints the annotated listings side by side.

Run:  python examples/stream_separation.py
"""

from repro import MachineConfig, compile_hidisc
from repro.asm.builder import ProgramBuilder
from repro.isa import Stream
from repro.isa.disasm import annotation_tag, disassemble_instruction


def build_lll1(n: int = 64) -> "Program":
    """Livermore loop 1 over small arrays (q, r, t are scalars)."""
    b = ProgramBuilder("lll1")
    b.data_f64("z", [0.01 * i for i in range(n + 11)])
    b.data_f64("y", [1.0 + 0.5 * i for i in range(n)])
    b.data_f64("x", [0.0] * n)
    b.data_f64("scalars", [0.5, 2.0, 3.0])        # q, r, t

    b.la("s0", "z")
    b.la("s1", "y")
    b.la("s2", "x")
    b.la("t9", "scalars")
    b.fld("f20", 0, "t9")     # q
    b.fld("f21", 8, "t9")     # r
    b.fld("f22", 16, "t9")    # t
    b.li("s3", 0)             # k
    b.li("s4", n)

    b.label("loop")
    b.slli("t0", "s3", 3)
    b.add("t1", "t0", "s0")
    b.fld("f0", 80, "t1")     # z[k+10]
    b.fld("f1", 88, "t1")     # z[k+11]
    b.add("t2", "t0", "s1")
    b.fld("f2", 0, "t2")      # y[k]
    b.comment("q + y[k]*(r*z[k+10] + t*z[k+11])")
    b.fmul("f3", "f21", "f0")
    b.fmul("f4", "f22", "f1")
    b.fadd("f3", "f3", "f4")
    b.fmul("f3", "f2", "f3")
    b.fadd("f3", "f20", "f3")
    b.add("t3", "t0", "s2")
    b.fsd("f3", 0, "t3")      # x[k] = ...
    b.addi("s3", "s3", 1)
    b.blt("s3", "s4", "loop")
    b.halt()
    return b.build()


def main() -> None:
    config = MachineConfig()
    program = build_lll1()
    comp = compile_hidisc(program, config)

    print("=" * 72)
    print("Figure 5/6 — stream separation of Livermore loop 1")
    print("=" * 72)
    text = comp.decoupled.text
    width = max(len(disassemble_instruction(i)) for i in text) + 2
    for pc, instr in enumerate(text):
        asm = disassemble_instruction(instr)
        stream = instr.ann.stream.value
        extra = []
        if instr.ann.to_ldq:
            extra.append("-> $LDQ")
        if instr.ann.ldq_rs1 or instr.ann.ldq_rs2:
            ops = [s for s, f in (("rs1", instr.ann.ldq_rs1),
                                  ("rs2", instr.ann.ldq_rs2)) if f]
            extra.append(f"$LDQ operand ({', '.join(ops)})")
        if instr.ann.to_sdq:
            extra.append("-> $SDQ")
        if instr.ann.sdq_data:
            extra.append("data <- $SDQ")
        print(f"{pc:3d}  [{stream}]  {asm:<{width}s} {'; '.join(extra)}")

    print()
    print("=" * 72)
    print("Figure 7 — CMAS (Cache Miss Access Slice)")
    print("=" * 72)
    print(f"probable-miss loads (profiled): "
          f"{sorted(comp.selection.probable_miss_pcs)}")
    for pc in sorted(comp.selection.cmas_pcs):
        instr = comp.original.text[pc]
        marker = "<- probable miss" if instr.ann.probable_miss else ""
        print(f"{pc:3d}  {disassemble_instruction(instr):<32s} "
              f"{annotation_tag(instr)} {marker}")

    counts = comp.separation.counts()
    print()
    print(f"static split: {counts['access']} Access Stream / "
          f"{counts['computation']} Computation Stream instructions; "
          f"{comp.communication.ldq_pairs} pop-to-register transfers, "
          f"{comp.communication.ldq_operands} $LDQ operands, "
          f"{comp.communication.sdq_stores} SDQ stores "
          f"({comp.communication.sdq_direct} via $SDQ results)")

    assert all(
        comp.decoupled.text[pc].ann.stream is Stream.AS
        for pc in range(len(comp.decoupled.text))
        if comp.decoupled.text[pc].is_mem
    )


if __name__ == "__main__":
    main()
