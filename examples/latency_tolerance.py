#!/usr/bin/env python3
"""A compact Figure 10: how each architecture tolerates memory latency.

Sweeps the (L2, memory) latency pair for one benchmark and prints the IPC
curve of all four machine models — the decoupled+prefetching machines
should sit higher and flatter than the baseline.

Run:  python examples/latency_tolerance.py [benchmark]
      (default benchmark: pointer; any of dm raytrace pointer update
       field neighborhood transitive)
"""

import sys

from repro import MachineConfig
from repro.experiments import figure10


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "pointer"
    config = MachineConfig()
    print(f"sweeping L2/memory latency for {benchmark!r} "
          f"(quick inputs; ~a minute)...\n")
    fig = figure10(
        config,
        quick=True,
        benchmarks=(benchmark,),
        progress=lambda msg: print(f"  {msg}"),
    )
    print()
    print(fig.render())
    base = fig.degradation(benchmark, "superscalar")
    hidisc = fig.degradation(benchmark, "hidisc")
    print(f"\nIPC loss from the shortest to the longest latency: "
          f"superscalar {base * 100:.1f}%, HiDISC {hidisc * 100:.1f}%")


if __name__ == "__main__":
    main()
