#!/usr/bin/env python3
"""Bring your own benchmark: define a Workload, run it on all four models.

The example implements *binary search* — a classic latency-bound kernel
the DIS suite does not cover — as a :class:`repro.workloads.Workload`
subclass: a seeded data generator, an assembly kernel written with the
builder DSL, and a pure-Python reference the simulator output is verified
against.  It then reuses the experiment runner to compare the four
architecture models on it.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import MachineConfig
from repro.asm.builder import ProgramBuilder
from repro.experiments import MODEL_LABELS, MODEL_ORDER, prepare, run_benchmark
from repro.workloads import Workload


class BinarySearchWorkload(Workload):
    """Search *queries* keys in a sorted table of *n* words.

    Each probe halves the range — log2(n) dependent, poorly-cached loads
    per query, with the comparison arithmetic branch-free so it lands in
    the Computation Stream.
    """

    name = "bsearch"
    label = "BinarySearch"
    warmup_fraction = 0.25

    def __init__(self, n: int = 8192, queries: int = 400, seed: int = 2003):
        super().__init__(seed=seed)
        self.n = n
        self.queries = queries
        rng = self.rng()
        self._table = np.sort(rng.choice(1 << 20, size=n, replace=False)
                              ).astype(np.int64)
        self._keys = rng.choice(self._table, size=queries).astype(np.int64)

    def build(self):
        b = ProgramBuilder(self.name)
        b.data_i64("table", self._table)
        b.data_i64("keys", self._keys)
        b.data_i64("out", [0])
        steps = int(np.log2(self.n))

        b.la("s0", "table")
        b.la("s1", "keys")
        b.li("s2", 0)                    # query index
        b.li("s3", self.queries)
        b.li("s5", 0)                    # found-position checksum (CS)

        b.label("qloop")
        b.slli("t0", "s2", 3)
        b.add("t0", "t0", "s1")
        b.ld("t1", 0, "t0")              # key
        b.li("t2", 0)                    # lo
        b.li("t3", self.n)               # hi
        b.li("t9", steps)
        b.label("probe")
        # mid = (lo + hi) >> 1 ; branch-free narrowing:
        b.add("t4", "t2", "t3")
        b.srli("t4", "t4", 1)
        b.slli("t5", "t4", 3)
        b.add("t5", "t5", "s0")
        b.ld("t6", 0, "t5")              # table[mid]
        b.slt("t7", "t6", "t1")          # go right iff table[mid] < key
        b.sub("t8", "zero", "t7")        # mask
        # lo = go_right ? mid : lo ; hi = go_right ? hi : mid
        b.xor("v0", "t2", "t4")
        b.and_("v0", "v0", "t8")
        b.xor("t2", "t2", "v0")
        b.xor("v1", "t3", "t4")
        b.nor("at", "t8", "zero")        # ~mask
        b.and_("v1", "v1", "at")
        b.xor("t3", "t3", "v1")
        b.addi("t9", "t9", -1)
        b.bnez("t9", "probe")
        b.add("s5", "s5", "t2")          # CS: fold the found position
        b.addi("s2", "s2", 1)
        b.blt("s2", "s3", "qloop")

        b.la("a0", "out")
        b.sd("s5", 0, "a0")
        b.halt()
        return b.build()

    def expected_outputs(self):
        steps = int(np.log2(self.n))
        checksum = 0
        for key in self._keys:
            lo, hi = 0, self.n
            for _ in range(steps):
                mid = (lo + hi) >> 1
                if self._table[mid] < key:
                    lo = mid
                else:
                    hi = mid
            checksum += lo
        return {"out": np.array([checksum], dtype=np.int64)}


def main() -> None:
    config = MachineConfig()
    workload = BinarySearchWorkload()
    print("preparing (functional run + compilation + validation)...")
    compiled = prepare(workload, config)
    print(f"  {compiled.work} measured instructions, "
          f"compilation: {compiled.compilation.report()}\n")

    bench = run_benchmark(compiled, config)
    print(f"{'model':<14s} {'cycles':>10s} {'IPC':>7s} "
          f"{'L1 miss':>8s} {'speedup':>8s}")
    for mode in MODEL_ORDER:
        r = bench.results[mode]
        print(f"{MODEL_LABELS[mode]:<14s} {r.cycles:>10d} {r.ipc:>7.3f} "
              f"{r.l1_demand_miss_rate:>8.4f} {bench.speedup(mode):>8.3f}")


if __name__ == "__main__":
    main()
