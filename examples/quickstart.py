#!/usr/bin/env python3
"""Quickstart: assemble a kernel, compile it with the HiDISC compiler, and
compare the baseline superscalar against the full HiDISC machine.

Run:  python examples/quickstart.py
"""

from repro import MachineConfig, assemble, compile_hidisc
from repro.sim import (
    Machine,
    build_cmas_plan,
    build_queue_plan,
    generate_decoupled_trace,
    generate_trace,
)

# A small data-intensive kernel: gather-accumulate through an index array.
SOURCE = """
        .data
index:  .word64 7, 2, 9, 4, 11, 0, 13, 6, 15, 8, 1, 10, 3, 12, 5, 14
values: .word64 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25
out:    .word64 0
        .text
main:   la   s0, index
        la   s1, values
        li   s2, 0          # i
        li   s3, 16         # n
        li   s4, 0          # sum (computation stream)
        li   s5, 0          # repeat counter
rep:    li   s2, 0
loop:   slli t0, s2, 3
        add  t1, t0, s0
        ld   t2, 0(t1)      # idx = index[i]
        slli t2, t2, 3
        add  t2, t2, s1
        ld   t3, 0(t2)      # v = values[idx]   (irregular access)
        mul  t4, t3, t3
        add  s4, s4, t4     # sum += v*v        (computation stream)
        addi s2, s2, 1
        blt  s2, s3, loop
        addi s5, s5, 1
        blt  s5, s3, rep
        la   a0, out
        sd   s4, 0(a0)
        halt
"""


def main() -> None:
    config = MachineConfig()            # the paper's Table 1
    program = assemble(SOURCE, name="quickstart")

    # --- the HiDISC compiler: separation + communication + CMAS ---------
    comp = compile_hidisc(program, config)
    print("compilation:", comp.report())

    # --- baseline superscalar -------------------------------------------
    trace, final_state = generate_trace(program)
    print(f"\nresult: out = {final_state.memory.load(program.symbol('out'), 8)}")
    base = Machine(config, comp.original, trace, mode="superscalar",
                   benchmark="quickstart").run()
    print(base.summary())

    # --- full HiDISC (CP + AP + CMP) -------------------------------------
    dtrace, _ = generate_decoupled_trace(comp.decoupled)
    hidisc = Machine(
        config, comp.decoupled, dtrace, mode="hidisc",
        queue_plan=build_queue_plan(comp.decoupled, dtrace),
        cmas_plan=build_cmas_plan(comp.decoupled, dtrace,
                                  config.cmas.trigger_distance),
        work_instructions=len(trace), benchmark="quickstart",
    ).run()
    print(hidisc.summary())
    print(f"\nspeedup: {hidisc.speedup_over(base):.3f}x, "
          f"miss-rate ratio: {hidisc.miss_rate_ratio(base):.3f}")


if __name__ == "__main__":
    main()
