"""Table 2 regeneration benchmark: mean speed-up per architecture model.

Reuses the session-scoped suite run and times only the aggregation, then
prints the regenerated table next to the paper's numbers and asserts the
ordering claim (decoupling << prefetching <= combined).
"""

from __future__ import annotations

from repro.experiments import table2


def test_table2_regeneration(benchmark, suite):
    view = benchmark(lambda: table2(suite))
    print()
    print(view.render())

    means = view.means()
    benchmark.extra_info["means"] = {m: round(v, 4) for m, v in means.items()}

    # Paper Table 2 shape: CP+AP contributes little; CP+CMP supplies most
    # of the gain; the combined machine is competitive with the best.
    assert means["cp_ap"] < means["cp_cmp"]
    assert means["hidisc"] >= means["cp_ap"]
    assert means["hidisc"] >= means["cp_cmp"] * 0.95
