"""Record a performance snapshot of the simulator's own hot paths.

Runs the pytest-benchmark suite (``benchmarks/bench_simulator.py``) and
appends one snapshot — commit, date, and per-scenario mean time plus the
derived simulation rates (cycles/sec, instr/sec) and peak resident set
size (``peak_rss_bytes``, a process high-water mark, so the lifecycle
layer's memory cost is tracked next to its speed) — to ``BENCH_<date>.json``
at the repository root.  The accumulated files track the perf trajectory
across PRs; ``benchmarks/check_regression.py`` gates CI on the same
numbers.

Usage::

    PYTHONPATH=src python benchmarks/record.py [-k EXPR] [--out-dir DIR]
    hidisc bench                       # same thing via the CLI

The snapshot file is a JSON array; re-running on the same day appends
another entry to the same file.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def _git_commit() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=30,
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def run_benchmarks(keyword: str | None = None,
                   extra_args: list[str] | None = None) -> dict:
    """Run the pytest-benchmark suite; returns the parsed benchmark JSON."""
    with tempfile.TemporaryDirectory(prefix="hidisc-bench-") as tmp:
        json_path = Path(tmp) / "bench.json"
        cmd = [sys.executable, "-m", "pytest",
               str(BENCH_DIR / "bench_simulator.py"),
               "--benchmark-only", "-q", f"--benchmark-json={json_path}"]
        if keyword:
            cmd += ["-k", keyword]
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src)
        proc = subprocess.run(cmd + (extra_args or []), cwd=REPO_ROOT,
                              env=env)
        if proc.returncode != 0:
            raise RuntimeError(
                f"benchmark run failed with exit code {proc.returncode}")
        return json.loads(json_path.read_text())


def snapshot_from(raw: dict, commit: str | None = None,
                  date: str | None = None) -> dict:
    """Convert a pytest-benchmark payload into one snapshot record.

    Scenario rates come from each benchmark's ``extra_info``: ``cycles``
    gives cycles/sec, ``instructions`` (or the replayed ``trace_length``)
    gives instr/sec.  Scenarios without that extra info just record times.
    """
    scenarios: dict[str, dict] = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        extra = bench.get("extra_info", {})
        mean = stats["mean"]
        entry: dict = {
            "mean_seconds": mean,
            "stddev_seconds": stats["stddev"],
            "rounds": stats["rounds"],
            "ops_per_second": 1.0 / mean if mean else 0.0,
        }
        cycles = extra.get("cycles")
        if cycles:
            entry["cycles"] = cycles
            entry["cycles_per_second"] = cycles / mean
        instructions = extra.get("instructions", extra.get("trace_length"))
        if instructions:
            entry["instructions"] = instructions
            entry["instr_per_second"] = instructions / mean
        peak_rss = extra.get("peak_rss_bytes")
        if peak_rss:
            entry["peak_rss_bytes"] = peak_rss
        scenarios[bench["name"]] = entry
    return {
        "date": date or datetime.date.today().isoformat(),
        "commit": commit if commit is not None else _git_commit(),
        "python": sys.version.split()[0],
        "scenarios": scenarios,
    }


def append_snapshot(snapshot: dict, out_dir: Path | None = None) -> Path:
    """Append *snapshot* to ``BENCH_<date>.json`` in *out_dir*; returns path."""
    out_dir = Path(out_dir) if out_dir is not None else REPO_ROOT
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{snapshot['date']}.json"
    history: list = []
    if path.exists():
        history = json.loads(path.read_text())
        if not isinstance(history, list):
            history = [history]
    history.append(snapshot)
    path.write_text(json.dumps(history, indent=1, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the simulator benchmarks and append a "
                    "BENCH_<date>.json snapshot.")
    parser.add_argument("-k", dest="keyword", default=None, metavar="EXPR",
                        help="pytest -k filter for a subset of scenarios")
    parser.add_argument("--out-dir", default=None, metavar="DIR",
                        help="snapshot directory (default: repo root)")
    args = parser.parse_args(argv)
    raw = run_benchmarks(keyword=args.keyword)
    snapshot = snapshot_from(raw)
    path = append_snapshot(
        snapshot, Path(args.out_dir) if args.out_dir else None)
    for name, entry in sorted(snapshot["scenarios"].items()):
        rate = entry.get("cycles_per_second")
        rate_text = f"  {rate:>12,.0f} cycles/s" if rate else ""
        print(f"{name:40s} {entry['mean_seconds'] * 1e3:9.2f} ms{rate_text}")
    print(f"snapshot ({len(snapshot['scenarios'])} scenarios, commit "
          f"{snapshot['commit']}) appended to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
