"""Table 1 regeneration benchmark (configuration rendering).

Trivially fast — included so every table and figure of the paper has a
``benchmarks/`` target — and asserts the rendered parameters are the
paper's, so a config drift fails the harness.
"""

from __future__ import annotations

from repro.experiments import table1


def test_table1_regeneration(benchmark, config):
    text = benchmark(lambda: table1(config))
    print()
    print("Table 1: Simulation parameters")
    print(text)
    for expected in (
        "bimodal", "2048", "8",
        "256 sets, 32 block, 4-way set associative, LRU",
        "1024 sets, 64 block, 4-way set associative, LRU",
        "12 CPU clock cycles", "120 CPU clock cycles",
        "AP 64 / CP 16",
    ):
        assert expected in text, expected
