"""Figure 8 regeneration benchmark: speed-up bars for all 7 benchmarks.

Times one full 7x4 simulation grid and prints the regenerated figure.
Shape assertions mirror the paper: HiDISC beats the baseline on average,
and the CMP-bearing models carry most of the gain.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.experiments import figure8, run_suite

from .conftest import QUICK


def test_figure8_regeneration(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_suite(config, quick=QUICK), rounds=1, iterations=1
    )
    view = figure8(result)
    print()
    print(view.render())

    speedups = view.speedups()
    benchmark.extra_info["mean_hidisc_speedup"] = result.mean_speedup("hidisc")
    benchmark.extra_info["speedups"] = {
        name: {m: round(v, 4) for m, v in by_model.items()}
        for name, by_model in speedups.items()
    }

    # Shape: the full system wins on average (paper: +11.9%).
    assert result.mean_speedup("hidisc") > 1.05
    # Shape: every benchmark's HiDISC run is not slower than the baseline
    # by more than a whisker.
    for name, by_model in speedups.items():
        assert by_model["hidisc"] > 0.9, name


def test_figure8_single_benchmark_cost(benchmark, config):
    """Cost of one benchmark end-to-end (compile + 4 timing runs)."""
    from repro.experiments import prepare, run_benchmark
    from repro.workloads import get_workload

    def one():
        cw = prepare(get_workload("field", quick=QUICK), config)
        return run_benchmark(cw, config)

    bench = benchmark.pedantic(one, rounds=1, iterations=1)
    assert bench.speedup("cp_ap") > 1.0  # Field is decoupling's benchmark
