"""Figure 10 regeneration benchmark: IPC versus memory latency.

Times the Pointer + Neighborhood latency sweep (4 latency points x 4
models each, compilation shared across points) and prints the regenerated
curves.  Shape assertion: the CMP-bearing models tolerate latency better
than the baseline (the paper's headline qualitative claim).
"""

from __future__ import annotations

from repro.experiments import figure10

from .conftest import QUICK


def test_figure10_regeneration(benchmark, config):
    fig = benchmark.pedantic(
        lambda: figure10(config, quick=QUICK), rounds=1, iterations=1
    )
    print()
    print(fig.render())

    for name in fig.ipc:
        benchmark.extra_info[name] = {
            mode: [round(v, 4) for v in series]
            for mode, series in fig.ipc[name].items()
        }

    for name in fig.ipc:
        base_deg = fig.degradation(name, "superscalar")
        hidisc_deg = fig.degradation(name, "hidisc")
        # Shape: HiDISC's curve sits above the baseline's at every point...
        for b, h in zip(fig.ipc[name]["superscalar"], fig.ipc[name]["hidisc"]):
            assert h >= b * 0.95, name
        # ... and by a growing factor at the longest latency (tolerance).
        assert fig.ipc[name]["hidisc"][-1] > fig.ipc[name]["superscalar"][-1], name
        benchmark.extra_info[f"{name}_degradation"] = {
            "superscalar": round(base_deg, 4),
            "hidisc": round(hidisc_deg, 4),
        }
