"""Simulator-infrastructure microbenchmarks.

Not figures from the paper — these track the reproduction's own hot paths
(functional interpretation rate, timing-core throughput, compiler cost) so
performance regressions in the simulator itself are visible.
"""

from __future__ import annotations

import resource
import sys

import pytest

from repro.config import MachineConfig, SamplingPlan
from repro.sim import Machine, generate_trace
from repro.sim.functional import FunctionalSimulator
from repro.slicer import compile_hidisc
from repro.telemetry import LifecycleCollector, MemorySink, Telemetry
from repro.workloads import FieldWorkload, large_workload

#: The sampled-vs-full showcase cell: the large raytrace instance is big
#: enough (~460k dynamic instructions) that full detailed simulation of
#: the hidisc model takes seconds, and regular enough that the default
#: error budget holds without densification — the honest setting for the
#: >= 10x cycles/sec claim the two scenarios below substantiate.
_LARGE_BENCH = "raytrace"
_LARGE_MODE = "hidisc"
_LARGE_PLAN = SamplingPlan(interval_length=80_000, detail_length=2_000,
                           warmup_length=1_000)


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process so far, in bytes.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS.  It is a
    high-water mark, so per-scenario values are monotone across the run;
    a scenario's own footprint is visible as the step over its
    predecessor in the snapshot.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def test_functional_interpreter_rate(benchmark):
    program = FieldWorkload(n=1200).program

    def run():
        sim = FunctionalSimulator(program)
        sim.run()
        return sim.instructions_executed

    executed = benchmark(run)
    benchmark.extra_info["instructions"] = executed
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()
    assert executed > 10_000


def test_timing_core_rate(benchmark):
    config = MachineConfig()
    program = FieldWorkload(n=1200).program
    trace, _ = generate_trace(program)

    def run():
        return Machine(config, program.copy(), trace,
                       mode="superscalar").run().cycles

    cycles = benchmark(run)
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["trace_length"] = len(trace)
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()


def test_timing_core_rate_telemetry_cpi(benchmark):
    """CPI-stack collection enabled; compare against test_timing_core_rate
    (telemetry off) — the disabled path above must stay within ~5% of the
    pre-telemetry baseline, and this variant shows the cost of stacks."""
    config = MachineConfig()
    program = FieldWorkload(n=1200).program
    trace, _ = generate_trace(program)

    def run():
        return Machine(config, program.copy(), trace, mode="superscalar",
                       telemetry=Telemetry(cpi=True)).run().cycles

    cycles = benchmark(run)
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()


def test_timing_core_rate_telemetry_full(benchmark):
    """Everything on: CPI stacks, event stream into a MemorySink, and
    128-cycle occupancy sampling — the worst-case instrumented path."""
    config = MachineConfig()
    program = FieldWorkload(n=1200).program
    trace, _ = generate_trace(program)

    def run():
        tel = Telemetry(sink=MemorySink(), cpi=True, sample_interval=128)
        result = Machine(config, program.copy(), trace, mode="superscalar",
                         telemetry=tel).run()
        return result.cycles, len(tel.sink.events)

    cycles, events = benchmark(run)
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["events"] = events
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()
    assert events > 0


def test_timing_core_rate_lifecycle(benchmark):
    """Per-dynamic-instruction lifecycle capture on (CPI stacks too) —
    the cost of stage-record tracing relative to the plain and
    CPI-only variants above, and the memory side via peak_rss_bytes."""
    config = MachineConfig()
    program = FieldWorkload(n=1200).program
    trace, _ = generate_trace(program)

    def run():
        tel = Telemetry(cpi=True, lifecycle=LifecycleCollector())
        result = Machine(config, program.copy(), trace, mode="superscalar",
                         telemetry=tel).run()
        return result.cycles, tel.lifecycle.committed

    cycles, captured = benchmark(run)
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["captured"] = captured
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()
    assert captured == len(trace)


def test_compiler_cost(benchmark):
    config = MachineConfig()
    program = FieldWorkload(n=1200).program
    trace, _ = generate_trace(program)

    comp = benchmark(lambda: compile_hidisc(program, config, trace=trace))
    assert comp.report()["static_instructions"] == len(program.text)


def test_prepare_cold_no_cache(benchmark):
    """Cold compilation cost of one benchmark (no run cache) — the
    baseline the warm-cache variant below is compared against."""
    config = MachineConfig()

    def run():
        from repro.experiments import prepare

        return prepare(FieldWorkload(n=1200), config).work

    work = benchmark(run)
    assert work > 0


def test_prepare_warm_run_cache(benchmark, tmp_path):
    """Warm-cache compilation: after one priming call, every iteration is
    a content-addressed disk hit (unpickle) instead of a recompile.  The
    gap between this and test_prepare_cold_no_cache is what the run cache
    buys each suite/figure10 invocation."""
    from repro.experiments import RunCache, prepare_cached

    config = MachineConfig()
    cache = RunCache(tmp_path / "cache")
    prepare_cached(FieldWorkload(n=1200), config, cache)  # prime

    def run():
        return prepare_cached(FieldWorkload(n=1200), config, cache).work

    work = benchmark(run)
    benchmark.extra_info["cache_hits"] = cache.hits
    assert work > 0 and cache.hits > 0


@pytest.fixture(scope="module")
def large_compiled():
    """One shared compilation of the large-scale showcase benchmark."""
    from repro.experiments import prepare

    return prepare(large_workload(_LARGE_BENCH), MachineConfig())


def test_large_workload_full_detail(benchmark, large_compiled):
    """Full detailed timing of one large-workload cell — the denominator
    of the sampled-speedup claim (compare cycles/sec against
    test_large_workload_sampled in the same snapshot)."""
    from repro.experiments import run_model

    config = MachineConfig()

    def run():
        return run_model(large_compiled, config, _LARGE_MODE).cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["trace_length"] = len(large_compiled.decoupled_trace)
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()


def test_large_workload_sampled(benchmark, large_compiled):
    """The same cell through the sampled-interval driver.  The snapshot's
    cycles_per_second for this scenario must be >= 10x the full-detail
    scenario's (the extrapolated cycle count stands in for the simulated
    cycles, as it deviates from the full run by well under the 3%
    error budget)."""
    from repro.experiments import run_model

    config = MachineConfig()

    def run():
        result = run_model(large_compiled, config, _LARGE_MODE,
                           sampling=_LARGE_PLAN)
        assert result.sampled and not result.sampling["exact"]
        return result.cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["trace_length"] = len(large_compiled.decoupled_trace)
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()


def test_cache_access_rate(benchmark):
    from repro.sim.cache import Cache

    cache = Cache(MachineConfig().l1)
    addresses = [(i * 5323) % (1 << 20) & ~7 for i in range(20_000)]

    def run():
        hits = 0
        for a in addresses:
            hits += cache.access(a).hit
        return hits

    benchmark(run)
