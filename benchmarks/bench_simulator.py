"""Simulator-infrastructure microbenchmarks.

Not figures from the paper — these track the reproduction's own hot paths
(functional interpretation rate, timing-core throughput, compiler cost) so
performance regressions in the simulator itself are visible.
"""

from __future__ import annotations

import resource
import sys

from repro.config import MachineConfig
from repro.sim import Machine, generate_trace
from repro.sim.functional import FunctionalSimulator
from repro.slicer import compile_hidisc
from repro.telemetry import LifecycleCollector, MemorySink, Telemetry
from repro.workloads import FieldWorkload


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process so far, in bytes.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS.  It is a
    high-water mark, so per-scenario values are monotone across the run;
    a scenario's own footprint is visible as the step over its
    predecessor in the snapshot.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def test_functional_interpreter_rate(benchmark):
    program = FieldWorkload(n=1200).program

    def run():
        sim = FunctionalSimulator(program)
        sim.run()
        return sim.instructions_executed

    executed = benchmark(run)
    benchmark.extra_info["instructions"] = executed
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()
    assert executed > 10_000


def test_timing_core_rate(benchmark):
    config = MachineConfig()
    program = FieldWorkload(n=1200).program
    trace, _ = generate_trace(program)

    def run():
        return Machine(config, program.copy(), trace,
                       mode="superscalar").run().cycles

    cycles = benchmark(run)
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["trace_length"] = len(trace)
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()


def test_timing_core_rate_telemetry_cpi(benchmark):
    """CPI-stack collection enabled; compare against test_timing_core_rate
    (telemetry off) — the disabled path above must stay within ~5% of the
    pre-telemetry baseline, and this variant shows the cost of stacks."""
    config = MachineConfig()
    program = FieldWorkload(n=1200).program
    trace, _ = generate_trace(program)

    def run():
        return Machine(config, program.copy(), trace, mode="superscalar",
                       telemetry=Telemetry(cpi=True)).run().cycles

    cycles = benchmark(run)
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()


def test_timing_core_rate_telemetry_full(benchmark):
    """Everything on: CPI stacks, event stream into a MemorySink, and
    128-cycle occupancy sampling — the worst-case instrumented path."""
    config = MachineConfig()
    program = FieldWorkload(n=1200).program
    trace, _ = generate_trace(program)

    def run():
        tel = Telemetry(sink=MemorySink(), cpi=True, sample_interval=128)
        result = Machine(config, program.copy(), trace, mode="superscalar",
                         telemetry=tel).run()
        return result.cycles, len(tel.sink.events)

    cycles, events = benchmark(run)
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["events"] = events
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()
    assert events > 0


def test_timing_core_rate_lifecycle(benchmark):
    """Per-dynamic-instruction lifecycle capture on (CPI stacks too) —
    the cost of stage-record tracing relative to the plain and
    CPI-only variants above, and the memory side via peak_rss_bytes."""
    config = MachineConfig()
    program = FieldWorkload(n=1200).program
    trace, _ = generate_trace(program)

    def run():
        tel = Telemetry(cpi=True, lifecycle=LifecycleCollector())
        result = Machine(config, program.copy(), trace, mode="superscalar",
                         telemetry=tel).run()
        return result.cycles, tel.lifecycle.committed

    cycles, captured = benchmark(run)
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["captured"] = captured
    benchmark.extra_info["peak_rss_bytes"] = _peak_rss_bytes()
    assert captured == len(trace)


def test_compiler_cost(benchmark):
    config = MachineConfig()
    program = FieldWorkload(n=1200).program
    trace, _ = generate_trace(program)

    comp = benchmark(lambda: compile_hidisc(program, config, trace=trace))
    assert comp.report()["static_instructions"] == len(program.text)


def test_prepare_cold_no_cache(benchmark):
    """Cold compilation cost of one benchmark (no run cache) — the
    baseline the warm-cache variant below is compared against."""
    config = MachineConfig()

    def run():
        from repro.experiments import prepare

        return prepare(FieldWorkload(n=1200), config).work

    work = benchmark(run)
    assert work > 0


def test_prepare_warm_run_cache(benchmark, tmp_path):
    """Warm-cache compilation: after one priming call, every iteration is
    a content-addressed disk hit (unpickle) instead of a recompile.  The
    gap between this and test_prepare_cold_no_cache is what the run cache
    buys each suite/figure10 invocation."""
    from repro.experiments import RunCache, prepare_cached

    config = MachineConfig()
    cache = RunCache(tmp_path / "cache")
    prepare_cached(FieldWorkload(n=1200), config, cache)  # prime

    def run():
        return prepare_cached(FieldWorkload(n=1200), config, cache).work

    work = benchmark(run)
    benchmark.extra_info["cache_hits"] = cache.hits
    assert work > 0 and cache.hits > 0


def test_cache_access_rate(benchmark):
    from repro.sim.cache import Cache

    cache = Cache(MachineConfig().l1)
    addresses = [(i * 5323) % (1 << 20) & ~7 for i in range(20_000)]

    def run():
        hits = 0
        for a in addresses:
            hits += cache.access(a).hit
        return hits

    benchmark(run)
