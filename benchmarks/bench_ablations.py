"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Trigger distance** (paper §4.2 fixes 512 and flags tuning as future
  work): sweep it and report cycles — too short starves the prefetcher,
  and the returns flatten once slices launch earlier than the miss
  latency.
* **Queue depth** (Table 1 fixes 32): shrinking the LDQ/SDQ erodes the
  slip distance and must never help.
* **CMAS contexts**: fewer hardware contexts serialise the prefetcher.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import prepare, run_model
from repro.utils import format_table
from repro.workloads import get_workload

from .conftest import QUICK


def test_trigger_distance_ablation(benchmark, config):
    cw = prepare(get_workload("update", quick=QUICK), config)

    def sweep():
        from repro.sim import Machine, build_cmas_plan

        cycles = {}
        for distance in (64, 256, 512, 1024):
            plan = build_cmas_plan(cw.compilation.original, cw.trace, distance)
            result = Machine(config, cw.compilation.original, cw.trace,
                             mode="cp_cmp", cmas_plan=plan,
                             work_instructions=cw.work,
                             warmup_pos=cw.warmup_pos_original,
                             benchmark="update").run()
            cycles[distance] = result.cycles
        return cycles

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation: CMAS trigger distance (Update, CP+CMP cycles)")
    print(format_table(["trigger distance", "cycles"],
                       [[d, c] for d, c in cycles.items()]))
    benchmark.extra_info["cycles"] = cycles
    # A 64-instruction lookahead cannot beat the paper's 512 by much; the
    # sweep must show prefetch lead time matters (shorter is not better).
    assert cycles[512] <= cycles[64] * 1.02


def test_queue_depth_ablation(benchmark, config):
    cw = prepare(get_workload("field", quick=QUICK), config)

    def sweep():
        cycles = {}
        for depth in (2, 8, 32):
            point = replace(config, queues=replace(
                config.queues, ldq_entries=depth, sdq_entries=depth))
            cycles[depth] = run_model(cw, point, "cp_ap").cycles
        return cycles

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation: LDQ/SDQ depth (Field, CP+AP cycles)")
    print(format_table(["queue entries", "cycles"],
                       [[d, c] for d, c in cycles.items()]))
    benchmark.extra_info["cycles"] = cycles
    # Slip distance needs queue capacity: the 2-entry machine cannot be
    # faster than the Table-1 machine.
    assert cycles[32] <= cycles[2]


def test_cmas_context_ablation(benchmark, config):
    cw = prepare(get_workload("pointer", quick=QUICK), config)

    def sweep():
        cycles = {}
        for contexts in (1, 4, 32):
            point = replace(config, cmas=replace(
                config.cmas, max_contexts=contexts))
            cycles[contexts] = run_model(cw, point, "cp_cmp").cycles
        return cycles

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation: CMAS hardware contexts (Pointer, CP+CMP cycles)")
    print(format_table(["contexts", "cycles"],
                       [[d, c] for d, c in cycles.items()]))
    benchmark.extra_info["cycles"] = cycles
    assert cycles[32] <= cycles[1]


def test_adaptive_distance_extension(benchmark, config):
    """Paper §6 future work: profile-adaptive prefetch distances vs the
    fixed 512-instruction trigger."""
    from repro.sim import Machine, build_cmas_plan, profile_cache
    from repro.slicer import adaptive_trigger_distances

    cw = prepare(get_workload("pointer", quick=QUICK), config)
    comp = cw.compilation
    profile = profile_cache(comp.original, cw.trace, config)
    distances = adaptive_trigger_distances(
        profile, config, comp.selection.probable_miss_pcs
    )

    def sweep():
        cycles = {}
        for label, kwargs in (
            ("fixed-512", {}),
            ("adaptive", {"distance_for": distances}),
        ):
            plan = build_cmas_plan(comp.original, cw.trace,
                                   config.cmas.trigger_distance, **kwargs)
            cycles[label] = Machine(
                config, comp.original, cw.trace, mode="cp_cmp",
                cmas_plan=plan, work_instructions=cw.work,
                warmup_pos=cw.warmup_pos_original, benchmark="pointer",
            ).run().cycles
        return cycles

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Extension: adaptive prefetch distance (Pointer, CP+CMP cycles)")
    print(format_table(["policy", "cycles"],
                       [[k, v] for k, v in cycles.items()]))
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["distances"] = {
        str(pc): d for pc, d in sorted(distances.items())
    }
    # The adaptive policy must be competitive with the paper's fixed 512.
    assert cycles["adaptive"] <= cycles["fixed-512"] * 1.05
