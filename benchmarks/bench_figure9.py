"""Figure 9 regeneration benchmark: L1 miss-rate reduction per model.

Reuses the session-scoped suite; prints the regenerated figure and asserts
the paper's shape: CMP-bearing models cut demand misses, CP+AP does not,
and the CMP's cut is substantial on the irregular benchmarks.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure9


def test_figure9_regeneration(benchmark, suite):
    view = benchmark(lambda: figure9(suite))
    print()
    print(view.render())

    ratios = view.ratios()
    benchmark.extra_info["mean_reduction"] = suite.mean_miss_reduction("hidisc")
    benchmark.extra_info["ratios"] = {
        name: {m: round(v, 4) for m, v in by_model.items()}
        for name, by_model in ratios.items()
    }

    # Shape: decoupling alone does not change what misses (paper: ~1.0).
    for name, by_model in ratios.items():
        assert by_model["cp_ap"] == pytest.approx(1.0, abs=0.12), name
    # Shape: HiDISC eliminates a meaningful share of misses on average
    # (paper: 17.1%).
    assert suite.mean_miss_reduction("hidisc") > 0.10
    # Shape: prefetching never *increases* the miss rate beyond noise.
    for name, by_model in ratios.items():
        assert by_model["hidisc"] < 1.1, name
