"""Shared fixtures for the benchmark harness.

Benchmarks default to the scaled-down (quick) inputs so that
``pytest benchmarks/ --benchmark-only`` finishes in minutes.  Set
``HIDISC_BENCH_FULL=1`` to regenerate the paper-scale numbers instead
(the same thing ``hidisc all`` does, but timed).
"""

from __future__ import annotations

import os

import pytest

from repro.config import MachineConfig
from repro.experiments import run_suite

QUICK = os.environ.get("HIDISC_BENCH_FULL", "") != "1"


@pytest.fixture(scope="session")
def config() -> MachineConfig:
    return MachineConfig()


@pytest.fixture(scope="session")
def suite(config):
    """The 7-benchmark x 4-model grid, shared by Figure 8/9 and Table 2."""
    return run_suite(config, quick=QUICK)
