"""CI benchmark gate: fail on a large throughput regression.

Compares a fresh pytest-benchmark run against the checked-in baseline
(``benchmarks/baseline.json``, written by ``--update``) and exits non-zero
if any scenario's throughput dropped by more than the tolerance (default
25%).  The compared statistic is each scenario's *minimum* round time, not
the mean: on a shared or frequency-scaled CI box the mean wanders by tens
of percent between consecutive runs, while the best round is stable — and
a structural slowdown (an accidentally quadratic loop, a de-optimised hot
path) moves the minimum just as surely as the mean.  Improvements and new
scenarios pass; a scenario present in the baseline but missing from the
run fails (a silently skipped benchmark would otherwise hide a regression
forever).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update   # rebase

"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from record import run_benchmarks

BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_TOLERANCE = 0.25


def _mins(raw: dict) -> dict[str, float]:
    return {bench["name"]: bench["stats"]["min"]
            for bench in raw.get("benchmarks", [])}


def check(current: dict[str, float], baseline: dict[str, float],
          tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures = []
    for name, base_min in sorted(baseline.items()):
        best = current.get(name)
        if best is None:
            failures.append(f"{name}: present in baseline but not run")
            continue
        # Throughput ratio: < 1 means the scenario got slower.
        ratio = base_min / best
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{name}: best round {best * 1e3:.2f} ms vs baseline "
                f"{base_min * 1e3:.2f} ms "
                f"({(1.0 - ratio) * 100.0:.0f}% slower, "
                f"tolerance {tolerance * 100.0:.0f}%)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate CI on benchmark throughput vs the checked-in "
                    "baseline.")
    parser.add_argument("--update", action="store_true",
                        help="rewrite benchmarks/baseline.json from a "
                             "fresh run instead of gating")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE, metavar="FRACTION",
                        help="allowed throughput drop (default 0.25)")
    parser.add_argument("-k", dest="keyword", default=None, metavar="EXPR",
                        help="pytest -k filter for a subset of scenarios")
    args = parser.parse_args(argv)

    raw = run_benchmarks(keyword=args.keyword)
    current = _mins(raw)
    if args.update:
        BASELINE_PATH.write_text(
            json.dumps(current, indent=1, sort_keys=True) + "\n")
        print(f"baseline rewritten with {len(current)} scenarios at "
              f"{BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update first",
              file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    if args.keyword:
        baseline = {name: mean for name, mean in baseline.items()
                    if name in current}
    failures = check(current, baseline, args.tolerance)
    for name in sorted(current):
        marker = "  (new)" if name not in baseline else ""
        print(f"{name:40s} {current[name] * 1e3:9.2f} ms{marker}")
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbenchmark regression gate passed "
          f"({len(baseline)} scenarios within "
          f"{args.tolerance * 100.0:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
