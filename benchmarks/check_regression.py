"""CI benchmark gate: fail on a large throughput regression.

Compares a fresh pytest-benchmark run against the checked-in baseline
(``benchmarks/baseline.json``, written by ``--update-baseline``) and exits
non-zero if any scenario's throughput dropped by more than the tolerance
(default 25%).  The compared statistic is each scenario's *minimum* round
time, not the mean: on a shared or frequency-scaled CI box the mean
wanders by tens of percent between consecutive runs, while the best round
is stable — and a structural slowdown (an accidentally quadratic loop, a
de-optimised hot path) moves the minimum just as surely as the mean.
Improvements pass; a mismatch in *either* direction between the baseline
and the run fails with a :class:`BaselineMismatch` naming the scenarios —
a scenario missing from the run would silently hide a regression forever,
and a scenario missing from the baseline is simply not gated yet (rebase
with ``--update-baseline`` after adding one).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py                    # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update-baseline  # rebase

"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from record import run_benchmarks

BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_TOLERANCE = 0.25


class BaselineMismatch(Exception):
    """The run and ``baseline.json`` disagree about which scenarios exist.

    Raised (never a bare ``KeyError``) when a scenario ran that the
    baseline does not gate, or a gated scenario did not run; the message
    names every offender and the remediation.
    """

    def __init__(self, missing_from_baseline: list[str],
                 missing_from_run: list[str]):
        self.missing_from_baseline = sorted(missing_from_baseline)
        self.missing_from_run = sorted(missing_from_run)
        parts = []
        if self.missing_from_baseline:
            parts.append(
                f"scenario(s) not gated by {BASELINE_PATH.name}: "
                + ", ".join(self.missing_from_baseline)
                + " — record them with "
                  "'python benchmarks/check_regression.py --update-baseline'")
        if self.missing_from_run:
            parts.append(
                "baseline scenario(s) that did not run: "
                + ", ".join(self.missing_from_run)
                + " — a silently skipped benchmark would hide regressions")
        super().__init__("; ".join(parts))


def _mins(raw: dict) -> dict[str, float]:
    return {bench["name"]: bench["stats"]["min"]
            for bench in raw.get("benchmarks", [])}


def check(current: dict[str, float], baseline: dict[str, float],
          tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = gate passes).

    Raises :class:`BaselineMismatch` when the two scenario sets differ —
    membership problems are configuration errors, not perf regressions,
    and get a named error instead of a tolerance line.
    """
    missing_from_baseline = [n for n in current if n not in baseline]
    missing_from_run = [n for n in baseline if n not in current]
    if missing_from_baseline or missing_from_run:
        raise BaselineMismatch(missing_from_baseline, missing_from_run)
    failures = []
    for name, base_min in sorted(baseline.items()):
        best = current[name]
        # Throughput ratio: < 1 means the scenario got slower.
        ratio = base_min / best
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{name}: best round {best * 1e3:.2f} ms vs baseline "
                f"{base_min * 1e3:.2f} ms "
                f"({(1.0 - ratio) * 100.0:.0f}% slower, "
                f"tolerance {tolerance * 100.0:.0f}%)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate CI on benchmark throughput vs the checked-in "
                    "baseline.")
    parser.add_argument("--update-baseline", "--update", dest="update",
                        action="store_true",
                        help="rewrite benchmarks/baseline.json from a "
                             "fresh run instead of gating")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE, metavar="FRACTION",
                        help="allowed throughput drop (default 0.25)")
    parser.add_argument("-k", dest="keyword", default=None, metavar="EXPR",
                        help="pytest -k filter for a subset of scenarios")
    args = parser.parse_args(argv)

    raw = run_benchmarks(keyword=args.keyword)
    current = _mins(raw)
    if args.update:
        BASELINE_PATH.write_text(
            json.dumps(current, indent=1, sort_keys=True) + "\n")
        print(f"baseline rewritten with {len(current)} scenarios at "
              f"{BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update-baseline "
              f"first", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    if args.keyword:
        # A -k subset run only gates the scenarios it selected.
        baseline = {name: mean for name, mean in baseline.items()
                    if name in current}
    try:
        failures = check(current, baseline, args.tolerance)
    except BaselineMismatch as exc:
        print(f"benchmark regression gate: {exc}", file=sys.stderr)
        return 2
    for name in sorted(current):
        print(f"{name:40s} {current[name] * 1e3:9.2f} ms")
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbenchmark regression gate passed "
          f"({len(baseline)} scenarios within "
          f"{args.tolerance * 100.0:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
