"""Legacy setup shim.

The execution environment is fully offline and lacks the ``wheel`` package,
so PEP 660 editable installs cannot build. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on modern environments) work everywhere.
"""

from setuptools import setup

setup()
